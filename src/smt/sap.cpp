#include "smt/sap.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "core/preprocess.h"
#include "engine/thread_pool.h"
#include "obs/events.h"
#include "support/stopwatch.h"

namespace ebmf {

namespace {

void accumulate_stats(sat::SolverStats& into, const sat::SolverStats& from) {
  into.decisions += from.decisions;
  into.propagations += from.propagations;
  into.conflicts += from.conflicts;
  into.restarts += from.restarts;
  into.learned_clauses += from.learned_clauses;
  into.learned_literals += from.learned_literals;
  into.minimized_literals += from.minimized_literals;
  into.deleted_clauses += from.deleted_clauses;
  into.arena_gcs += from.arena_gcs;
  // A footprint gauge, not a counter: report the largest solver arena seen
  // (summing probe clones would over-count the same formula many times).
  into.arena_bytes = std::max(into.arena_bytes, from.arena_bytes);
}

/// Hard ceiling on the race width: every probe owns a full formula clone
/// and a transient thread, and a service can have many requests in flight
/// at once, so an unbounded client-supplied width must not translate into
/// unbounded threads.
constexpr std::size_t kMaxProbes = 64;

/// Estimated seconds per encoding work unit. Both encoders emit
/// Θ(cells²·bound) clauses (Eq. 4 per cross pair, per label or bit), and
/// the constructor cannot be interrupted once started — so a deadline-
/// bounded solve must refuse formulas it cannot even build in time.
/// Calibration: 27k cells at bound 31 takes ≈ 8 s to encode.
constexpr double kEncodeSecondsPerUnit = 4e-10;

/// Refuse the SMT phase when building the first formula would by itself
/// consume most of the remaining deadline. Unlimited deadlines always
/// qualify — the caller asked for an exact answer at any cost.
bool smt_encode_affordable(std::size_t cells, std::size_t bound,
                           const Budget& budget) {
  if (!budget.deadline.limited()) return true;
  const double estimate = kEncodeSecondsPerUnit * static_cast<double>(cells) *
                          static_cast<double>(cells) *
                          static_cast<double>(bound);
  return estimate < 0.5 * budget.deadline.remaining_seconds();
}

/// Race width: 0 means "hardware threads"; always clamped to kMaxProbes.
std::size_t resolve_probes(std::size_t requested) {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }
  return std::min(requested, kMaxProbes);
}

/// The paper's sequential decreasing-b loop (Algorithm 1, lines 2-10).
/// Preconditions: partition non-optimal, budget not exhausted.
void smt_phase_sequential(const BinaryMatrix& m, const SapOptions& options,
                          SapResult& result) {
  Stopwatch phase;
  std::size_t b = result.partition.size() - 1;
  EBMF_ASSERT(b >= 1);  // size==rank handled by caller; rank >= 1
  smt::LabelFormula formula(m, b, options.encoder);
  result.smt_seconds += phase.seconds();  // encoding time counts too
  result.status = SapStatus::BoundedOnly;
  while (b >= result.rank_lower) {
    phase.restart();
    const sat::SolveResult answer = formula.solve(options.budget);
    const double call_seconds = phase.seconds();
    result.smt_seconds += call_seconds;
    result.smt_calls.push_back(SapSmtCall{b, answer, call_seconds});

    if (answer == sat::SolveResult::Sat) {
      Partition p = formula.extract_partition();
      EBMF_ENSURES(p.size() <= b);
      EBMF_ENSURES(static_cast<bool>(validate_partition(m, p)));
      result.partition = std::move(p);
      // The extracted partition can use fewer than b rectangles; continue
      // below its size, not just below b.
      const std::size_t next = result.partition.size() - 1;
      if (next < result.rank_lower ||
          result.partition.size() == result.rank_lower) {
        result.status = SapStatus::Optimal;
        break;
      }
      formula.narrow(next);
      b = next;
    } else if (answer == sat::SolveResult::Unsat) {
      // No partition with <= b rectangles: the current one (size b+1 or the
      // heuristic's) is optimal.
      result.status = SapStatus::Optimal;
      result.certified_lower = b + 1;
      break;
    } else {
      break;  // budget exhausted: keep best-so-far, bounds stand
    }
    if (options.budget.exhausted()) break;
  }
  accumulate_stats(result.smt_stats, formula.solver().stats());
}

/// One probe of the bound race.
struct Probe {
  std::size_t bound = 0;
  sat::SolveResult answer = sat::SolveResult::Unknown;
  Partition partition;  ///< Valid when answer == Sat.
  /// The probe's formula, kept so a SAT winner's learnt clauses can seed
  /// the next wave's base instead of re-deriving them from scratch.
  std::unique_ptr<smt::LabelFormula> formula;
  double seconds = 0.0;
  sat::SolverStats stats;
  Budget budget;  ///< Per-probe cancellable budget.
  bool cancelled_by_rival = false;
  bool finished = false;
};

/// The parallel bound race: each wave clones the base formula once per
/// probe and decides "r_B ≤ b" for the `width` highest unresolved bounds
/// concurrently. Monotonicity makes cross-cancellation sound — a SAT answer
/// yielding a partition of size s makes every probe at bound ≥ s redundant
/// (their SAT is implied), and an UNSAT at b makes every probe at bound ≤ b
/// futile (their UNSAT is implied) — so winners retire losers through the
/// per-probe cancellation flags and the wave joins quickly. The merge reads
/// outcomes in bound order, never finish order, so the resulting bracket
/// (and, given enough budget, the final depth/status) is deterministic.
void smt_phase_race(const BinaryMatrix& m, const SapOptions& options,
                    std::size_t probes, SapResult& result) {
  Stopwatch phase;
  std::size_t hi = result.partition.size();  // best certified upper bound
  std::size_t cert_lo = result.rank_lower;   // best certified lower bound
  EBMF_ASSERT(hi >= cert_lo + 1);
  auto base =
      std::make_unique<smt::LabelFormula>(m, hi - 1, options.encoder);
  result.status = SapStatus::BoundedOnly;
  result.probes_used = probes;

  while (hi > cert_lo && !options.budget.exhausted()) {
    const std::size_t width = std::min(probes, hi - cert_lo);
    obs::emit_event(obs::EventCode::SmtWaveLaunch, result.probe_waves + 1,
                    hi - width);
    std::vector<Probe> wave(width);
    for (std::size_t i = 0; i < width; ++i) {
      wave[i].bound = hi - 1 - i;
      wave[i].budget = options.budget;
      // Keep the caller's cancellation reachable while giving the race its
      // own per-probe retirement flag.
      wave[i].budget.also_cancel = options.budget.cancel;
      wave[i].budget.cancel = std::make_shared<std::atomic<bool>>(false);
    }

    std::mutex mutex;
    std::size_t wave_best = hi;  // smallest SAT partition size this wave

    const auto run_probe = [&](std::size_t i) {
      Stopwatch sw;
      std::unique_ptr<smt::LabelFormula> formula = base->clone();
      if (wave[i].bound < formula->bound()) formula->narrow(wave[i].bound);
      const sat::SolveResult answer = formula->solve(wave[i].budget);
      Partition p;
      if (answer == sat::SolveResult::Sat) p = formula->extract_partition();

      const std::lock_guard<std::mutex> lock(mutex);
      wave[i].answer = answer;
      wave[i].seconds = sw.seconds();
      wave[i].stats = formula->solver().stats();
      wave[i].formula = std::move(formula);
      wave[i].finished = true;
      if (answer == sat::SolveResult::Sat) {
        wave[i].partition = std::move(p);
        wave_best = std::min(wave_best, wave[i].partition.size());
        for (Probe& rival : wave) {
          if (!rival.finished && rival.bound >= wave_best) {
            rival.budget.request_cancel();
            rival.cancelled_by_rival = true;
          }
        }
      } else if (answer == sat::SolveResult::Unsat) {
        for (Probe& rival : wave) {
          if (!rival.finished && rival.bound <= wave[i].bound) {
            rival.budget.request_cancel();
            rival.cancelled_by_rival = true;
          }
        }
      }
    };

    // One worker per probe through the engine's fork-join pool (width is
    // already clamped to kMaxProbes).
    engine::parallel_for(width, width, run_probe);

    // Deterministic merge: outcomes are read highest bound first.
    ++result.probe_waves;
    result.probe_calls += width;
    bool progress = false;
    Probe* winner = nullptr;
    for (Probe& probe : wave) {
      result.smt_calls.push_back(
          SapSmtCall{probe.bound, probe.answer, probe.seconds});
      accumulate_stats(result.smt_stats, probe.stats);
      if (probe.answer == sat::SolveResult::Sat) {
        EBMF_ENSURES(probe.partition.size() <= probe.bound);
        EBMF_ENSURES(
            static_cast<bool>(validate_partition(m, probe.partition)));
        if (probe.partition.size() < hi) {
          hi = probe.partition.size();
          result.partition = std::move(probe.partition);
          winner = &probe;
          progress = true;
        }
      } else if (probe.answer == sat::SolveResult::Unsat) {
        cert_lo = std::max(cert_lo, probe.bound + 1);
        progress = true;
      } else if (probe.cancelled_by_rival) {
        ++result.probes_cancelled;
      }
    }
    // Seed the next wave from the SAT winner's solved formula: its learnt
    // clauses and activities carry over instead of every wave restarting
    // from the pristine base. (UNSAT formulas are never adopted — their
    // solver is in a terminal conflict state.)
    if (winner != nullptr) base = std::move(winner->formula);
    obs::emit_event(obs::EventCode::SmtWaveRetire, result.probe_waves, hi);
    {
      // Live progress: one frame per retired wave, carrying the certified
      // bracket the deterministic merge just produced.
      obs::ProgressFrame frame;
      frame.seconds = phase.seconds();
      frame.incumbent_depth = hi;
      frame.lower_bound = cert_lo;
      frame.gap = hi > cert_lo ? hi - cert_lo : 0;
      frame.conflicts = result.smt_stats.conflicts;
      frame.wave = result.probe_waves;
      frame.phase = "wave";
      options.budget.publish_progress(std::move(frame));
    }
    // Every probe Unknown with no rival to blame: the shared budget (or a
    // per-call conflict cap) ran dry — keep the bracket and stop.
    if (!progress) break;
  }

  if (hi <= cert_lo) result.status = SapStatus::Optimal;
  // Keep the tightest certified lower bound even when the budget ran out
  // before the bracket closed — an UNSAT probe's proof must not be lost.
  result.certified_lower = std::max(result.certified_lower, cert_lo);
  result.smt_seconds += phase.seconds();
}

/// Algorithm 1 on one irreducible matrix (no preprocessing).
SapResult sap_solve_core(const BinaryMatrix& m, const SapOptions& options) {
  Stopwatch total;
  SapResult result;

  if (m.is_zero()) {
    result.status = SapStatus::Optimal;
    result.total_seconds = total.seconds();
    return result;
  }

  // Lower bound: exact real rank (Eq. 3).
  Stopwatch phase;
  result.rank_lower = real_rank(m);
  result.certified_lower = result.rank_lower;
  result.rank_seconds = phase.seconds();

  // Upper bound: row packing (Algorithm 2). Stop early on a rank match —
  // such a partition is already provably optimal.
  RowPackingOptions packing = options.packing;
  if (packing.stop_at == 0) packing.stop_at = result.rank_lower;
  if (options.budget.limited() && !packing.budget.limited())
    packing.budget = options.budget;
  phase.restart();
  RowPackingResult heuristic = row_packing_ebmf(m, packing);
  result.heuristic_seconds = phase.seconds();
  result.partition = std::move(heuristic.partition);
  result.heuristic_size = result.partition.size();
  EBMF_ENSURES(static_cast<bool>(validate_partition(m, result.partition)));

  if (result.partition.size() == result.rank_lower) {
    result.status = SapStatus::Optimal;
    result.total_seconds = total.seconds();
    return result;
  }
  if (!options.use_smt ||
      (options.smt_cell_limit != 0 &&
       m.ones_count() > options.smt_cell_limit)) {
    result.status = SapStatus::HeuristicOnly;
    result.total_seconds = total.seconds();
    return result;
  }
  if (options.budget.exhausted()) {
    result.status = SapStatus::BoundedOnly;
    result.total_seconds = total.seconds();
    return result;
  }
  // The encoders are not interruptible; refuse a formula whose mere
  // construction would blow through the deadline and keep the bracket.
  if (!smt_encode_affordable(m.ones_count(), result.partition.size() - 1,
                             options.budget)) {
    result.status = SapStatus::BoundedOnly;
    result.total_seconds = total.seconds();
    return result;
  }

  // SMT phase: query r_B(M) <= b for decreasing b (Algorithm 1, lines
  // 2-10). With a race width > 1 and at least two unresolved bounds, the
  // decreasing-b probes run concurrently; otherwise the sequential loop
  // (which also reuses one incrementally-narrowed formula) is the better
  // fit.
  const std::size_t probes = resolve_probes(options.probes);
  if (probes >= 2 && result.partition.size() >= result.rank_lower + 2)
    smt_phase_race(m, options, probes, result);
  else
    smt_phase_sequential(m, options, result);
  result.total_seconds = total.seconds();
  EBMF_ENSURES(result.partition.size() >= result.rank_lower);
  return result;
}

}  // namespace

SapResult sap_solve(const BinaryMatrix& m, const SapOptions& options) {
  if (!options.preprocess) return sap_solve_core(m, options);

  Stopwatch total;
  // Exactness-preserving reductions: collapse duplicates, then split the
  // bipartite row/column graph into connected components; r_B is additive
  // over components and invariant under the collapse (see preprocess.h).
  const DuplicateReduction reduction = reduce_duplicates(m);
  const auto components = split_components(reduction.reduced);

  SapOptions sub_options = options;
  sub_options.preprocess = false;

  SapResult aggregate;
  aggregate.status = SapStatus::Optimal;
  Partition reduced_partition;
  for (const auto& component : components) {
    SapResult sub = sap_solve_core(component.matrix, sub_options);
    Partition lifted =
        lift_partition(sub.partition, component, reduction.reduced.rows(),
                       reduction.reduced.cols());
    reduced_partition.insert(reduced_partition.end(),
                             std::make_move_iterator(lifted.begin()),
                             std::make_move_iterator(lifted.end()));
    aggregate.rank_lower += sub.rank_lower;
    aggregate.certified_lower += sub.certified_lower;  // r_B is additive
    aggregate.heuristic_size += sub.heuristic_size;
    aggregate.rank_seconds += sub.rank_seconds;
    aggregate.heuristic_seconds += sub.heuristic_seconds;
    aggregate.smt_seconds += sub.smt_seconds;
    aggregate.smt_calls.insert(aggregate.smt_calls.end(),
                               sub.smt_calls.begin(), sub.smt_calls.end());
    accumulate_stats(aggregate.smt_stats, sub.smt_stats);
    aggregate.probes_used = std::max(aggregate.probes_used, sub.probes_used);
    aggregate.probe_waves += sub.probe_waves;
    aggregate.probe_calls += sub.probe_calls;
    aggregate.probes_cancelled += sub.probes_cancelled;
    if (sub.status != SapStatus::Optimal &&
        aggregate.status == SapStatus::Optimal)
      aggregate.status = sub.status;
  }
  aggregate.partition = expand_partition(reduced_partition, reduction);
  aggregate.total_seconds = total.seconds();
  EBMF_ENSURES(
      static_cast<bool>(validate_partition(m, aggregate.partition)));
  EBMF_ENSURES(aggregate.partition.size() >= aggregate.rank_lower);
  return aggregate;
}

}  // namespace ebmf
