#pragma once
/// \file sap.h
/// \brief SAP ("SMT and packing") — Algorithm 1 of the paper, the library's
/// headline entry point.
///
/// 1. Row packing produces a valid EBMF P (upper bound |P| ≥ r_B).
/// 2. The real rank gives the lower bound (Eq. 3).
/// 3. If they meet, P is optimal with no search at all.
/// 4. Otherwise the SMT formula for b = |P|−1 is built and solved with
///    decreasing b (narrowing incrementally) until UNSAT or b < rank_ℝ(M).
///
/// The procedure is *anytime*: P always holds the best valid partition
/// found so far, so an expired deadline or exhausted conflict budget
/// degrades the optimality certificate, never the solution's validity.

#include <cstdint>
#include <vector>

#include "core/bounds.h"
#include "core/partition.h"
#include "core/row_packing.h"
#include "smt/label_formula.h"

namespace ebmf {

/// How strong the answer's optimality claim is.
enum class SapStatus {
  Optimal,        ///< |P| = r_B proven (rank match or UNSAT certificate).
  BoundedOnly,    ///< Search ended by budget; rank_lower ≤ r_B ≤ |P|.
  HeuristicOnly,  ///< SMT disabled by options; same bracketing as above.
};

/// Options for sap_solve.
struct SapOptions {
  RowPackingOptions packing;    ///< Heuristic phase configuration.
  smt::EncoderOptions encoder;  ///< CNF lowering choices.
  /// Shared budget: deadline over the whole solve, max_conflicts per SAT
  /// decision call, plus the optional cancellation flag.
  Budget budget;
  bool use_smt = true;          ///< false → heuristic only.
  /// Skip building the SMT formula when the matrix has more 1-cells than
  /// this (the formula is quadratic in cells; the paper's 100×100 set is
  /// "too large for SMT"). 0 disables the guard.
  std::size_t smt_cell_limit = 0;
  /// Apply the exactness-preserving reductions of core/preprocess.h
  /// (duplicate collapse + connected-component split) and solve each piece
  /// independently. Never changes the answer; often shrinks the SMT
  /// formula enough to make sparse 100×100 instances exactly solvable.
  bool preprocess = true;
  /// Width of the parallel bound race in the SMT phase. 1 = the paper's
  /// sequential decreasing-b loop; k > 1 races probes for bounds
  /// b, b-1, …, b-k+1 concurrently (each on a clone of the formula), a SAT
  /// answer cancels the probes it makes redundant and reseeds the race
  /// below, an UNSAT answer certifies from below; 0 = auto (hardware
  /// threads). The final (depth, status, bounds) answer matches the
  /// sequential loop whenever the budget suffices to converge.
  std::size_t probes = 1;
};

/// Timing/record of one SMT decision call inside SAP.
struct SapSmtCall {
  std::size_t bound = 0;          ///< b queried ("r_B ≤ b?").
  sat::SolveResult result = sat::SolveResult::Unknown;
  double seconds = 0.0;
};

/// Result of sap_solve.
struct SapResult {
  Partition partition;            ///< Best valid EBMF found (always valid).
  SapStatus status = SapStatus::HeuristicOnly;
  std::size_t rank_lower = 0;     ///< rank_ℝ(M) (Eq. 3 lower bound).
  /// Tightest certified lower bound on r_B: rank_lower, raised to b+1 by
  /// every UNSAT answer at bound b (the race can certify this even when
  /// the budget expires before the bracket closes).
  std::size_t certified_lower = 0;
  std::size_t heuristic_size = 0; ///< |P| after the packing phase.
  double rank_seconds = 0.0;
  double heuristic_seconds = 0.0;
  double smt_seconds = 0.0;       ///< Total across all decision calls.
  double total_seconds = 0.0;
  std::vector<SapSmtCall> smt_calls;
  sat::SolverStats smt_stats;     ///< Cumulative SAT search statistics.

  // -- bound-race accounting (zero when the sequential loop ran) ---------
  std::size_t probes_used = 0;       ///< Race width actually engaged.
  std::size_t probe_waves = 0;       ///< Fork-join rounds of the race.
  std::size_t probe_calls = 0;       ///< Probe solves launched in total.
  std::size_t probes_cancelled = 0;  ///< Probes retired by a rival's answer.

  /// Depth of the addressing schedule = |partition|.
  [[nodiscard]] std::size_t depth() const noexcept { return partition.size(); }

  /// True when the result is certified depth-optimal.
  [[nodiscard]] bool proven_optimal() const noexcept {
    return status == SapStatus::Optimal;
  }
};

/// Run SAP (Algorithm 1) on `m`.
/// Postcondition: result.partition is a valid EBMF of `m`
/// (empty iff `m` is the zero matrix) and |partition| ≥ rank_lower.
SapResult sap_solve(const BinaryMatrix& m, const SapOptions& options = {});

}  // namespace ebmf
