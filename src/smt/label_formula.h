#pragma once
/// \file label_formula.h
/// \brief The paper's SMT formulation of "r_B(M) ≤ b", lowered to CNF.
///
/// The paper encodes a function f : ones(M) → [0, b) (an uninterpreted
/// function over bit-vectors in Z3) with the single constraint family of
/// Eq. 4: for every ordered pair of distinct 1s e = (i,j), e' = (i',j'):
///
///     M[i][j'] = 0  :  f(e) ≠ f(e')
///     M[i][j'] = 1  :  f(e) = f(e')  ⇒  f(e) = f(i,j')
///
/// A model of f *is* a rectangle partition: each label class is closed
/// under corner completion (Eq. 1), hence exactly a rectangle.
///
/// Two CNF lowerings are provided:
///
///  * `Binary` — each f(e) is a ⌈log₂ b⌉-bit vector; (in)equalities become
///    difference/equality literals over the bits; a lexicographic side
///    constraint enforces f(e) < b. This mirrors the paper's bit-vector
///    usage most closely.
///  * `OneHot` — variable x[e][t] ⇔ "cell e is in rectangle t" with an
///    exactly-one row per cell; Eq. 4 becomes 2-/3-literal clauses per label.
///    Usually stronger for proving UNSAT (the expensive step the paper's
///    Fig. 4 highlights), especially with the precedence symmetry breaking.
///
/// The formula is *incremental*: Algorithm 1's line 8 ("add f(e) ≠ b")
/// is `narrow()`, which forbids the top label without rebuilding anything.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/matrix.h"
#include "core/partition.h"
#include "sat/dimacs.h"
#include "sat/solver.h"

namespace ebmf::smt {

/// Which CNF lowering of the label function to use.
enum class LabelEncoding {
  Binary,  ///< Bit-vector labels (paper-faithful).
  OneHot,  ///< Direct encoding, one selector per (cell, rectangle).
};

/// Options for formula construction.
struct EncoderOptions {
  LabelEncoding encoding = LabelEncoding::OneHot;
  /// Break label-permutation symmetry (first-cell-zero for Binary;
  /// precedence chain for OneHot). Sound: every partition is reachable up
  /// to relabeling.
  bool symmetry_breaking = true;
};

/// Statistics about the constructed CNF.
struct FormulaStats {
  std::size_t variables = 0;
  std::size_t clauses = 0;
  std::size_t cells = 0;            ///< 1s of the matrix.
  std::size_t neq_pairs = 0;        ///< Pairs constrained f(e) ≠ f(e').
  std::size_t implication_pairs = 0;  ///< Eq.-4 corner implications added.
};

/// The decision problem "does M admit an EBMF with at most bound()
/// rectangles?", solvable incrementally with a decreasing bound.
class LabelFormula {
 public:
  /// Build the formula for `r_B(m) ≤ initial_bound`.
  /// Preconditions: initial_bound ≥ 1; m has at least one 1.
  LabelFormula(const BinaryMatrix& m, std::size_t initial_bound,
               const EncoderOptions& options = {});

  LabelFormula& operator=(const LabelFormula&) = delete;

  /// Deep copy: an independent formula + solver with the same clauses,
  /// bound, and learnt state. Thread-safe against other concurrent clone()
  /// calls on the same (un-mutated) source — the SAP bound race clones one
  /// base formula per probe and narrows each clone to its own bound. The
  /// copy is a handful of flat-buffer copies (the solver's clause arena is
  /// one contiguous block), far cheaper than re-encoding the matrix.
  [[nodiscard]] std::unique_ptr<LabelFormula> clone() const {
    return std::unique_ptr<LabelFormula>(new LabelFormula(*this));
  }

  /// Current bound b.
  [[nodiscard]] std::size_t bound() const noexcept { return bound_; }

  /// Decide satisfiability at the current bound within `budget`.
  sat::SolveResult solve(const sat::Budget& budget = {});

  /// Extract the partition from the last Sat model (empty label classes are
  /// dropped, so the result can be smaller than bound()).
  /// Precondition: the last solve() returned Sat.
  [[nodiscard]] Partition extract_partition() const;

  /// Lower the bound to `new_bound` by forbidding labels new_bound..bound-1
  /// (Algorithm 1, line 8). Precondition: 1 ≤ new_bound < bound().
  void narrow(std::size_t new_bound);

  /// Encoding statistics (variables/clauses as of construction).
  [[nodiscard]] const FormulaStats& stats() const noexcept { return stats_; }

  /// Access the underlying solver (cumulative search statistics).
  [[nodiscard]] const sat::Solver& solver() const noexcept { return solver_; }

  /// Snapshot the formula as a plain CNF (for DIMACS export / external
  /// solvers). Reflects the current bound, including narrow() clauses.
  [[nodiscard]] sat::Cnf export_cnf() const;

 private:
  LabelFormula(const LabelFormula&) = default;  // via clone()

  void build_onehot();
  void build_binary();
  void forbid_label_onehot(std::size_t t);
  void forbid_label_binary(std::size_t value);
  [[nodiscard]] std::size_t label_of(std::size_t cell) const;

  /// One-sided "bits differ at k" literal for the cross-row pair (a, b),
  /// created lazily and cached.
  std::vector<sat::Lit>& diff_lits(std::size_t a, std::size_t b);
  /// One-sided "labels equal" literal for the same-row pair (a, b),
  /// created lazily and cached.
  sat::Lit eq_lit(std::size_t a, std::size_t b);

  const BinaryMatrix m_;
  std::vector<std::pair<std::size_t, std::size_t>> cells_;
  std::vector<std::vector<std::int32_t>> cell_index_;  // (i,j) -> cell or -1
  EncoderOptions options_;
  std::size_t bound_ = 0;
  std::size_t nbits_ = 0;  // Binary encoding width

  sat::Solver solver_;
  // OneHot: selector[e][t]. Binary: bits[e][k].
  std::vector<std::vector<sat::Lit>> vars_;
  // Lazy caches keyed by pair (a<b) packed as a*#cells+b.
  std::unordered_map<std::uint64_t, std::vector<sat::Lit>> diff_cache_;
  std::unordered_map<std::uint64_t, sat::Lit> eq_cache_;

  FormulaStats stats_;
};

}  // namespace ebmf::smt
