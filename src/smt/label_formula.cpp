#include "smt/label_formula.h"

#include <algorithm>

#include "sat/cardinality.h"

namespace ebmf::smt {

namespace {

std::size_t ceil_log2(std::size_t x) {
  std::size_t bits = 0;
  std::size_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

LabelFormula::LabelFormula(const BinaryMatrix& m, std::size_t initial_bound,
                           const EncoderOptions& options)
    : m_(m), cells_(m.ones()), options_(options), bound_(initial_bound) {
  EBMF_EXPECTS(initial_bound >= 1);
  EBMF_EXPECTS(!cells_.empty());
  cell_index_.assign(m_.rows(), std::vector<std::int32_t>(m_.cols(), -1));
  for (std::size_t e = 0; e < cells_.size(); ++e)
    cell_index_[cells_[e].first][cells_[e].second] =
        static_cast<std::int32_t>(e);
  stats_.cells = cells_.size();

  switch (options_.encoding) {
    case LabelEncoding::OneHot:
      build_onehot();
      break;
    case LabelEncoding::Binary:
      build_binary();
      break;
  }
  stats_.variables = solver_.num_vars();
  stats_.clauses = solver_.num_clauses();
}

std::vector<sat::Lit>& LabelFormula::diff_lits(std::size_t a, std::size_t b) {
  if (a > b) std::swap(a, b);
  const std::uint64_t key = static_cast<std::uint64_t>(a) * cells_.size() + b;
  auto it = diff_cache_.find(key);
  if (it != diff_cache_.end()) return it->second;
  // One-sided difference selectors: diff_k -> (bit_k(a) != bit_k(b)).
  std::vector<sat::Lit> diffs;
  diffs.reserve(nbits_);
  for (std::size_t k = 0; k < nbits_; ++k) {
    const sat::Lit d = sat::pos(solver_.new_var());
    solver_.add_clause(d.neg(), vars_[a][k], vars_[b][k]);
    solver_.add_clause(d.neg(), vars_[a][k].neg(), vars_[b][k].neg());
    diffs.push_back(d);
  }
  return diff_cache_.emplace(key, std::move(diffs)).first->second;
}

sat::Lit LabelFormula::eq_lit(std::size_t a, std::size_t b) {
  if (a > b) std::swap(a, b);
  const std::uint64_t key = static_cast<std::uint64_t>(a) * cells_.size() + b;
  auto it = eq_cache_.find(key);
  if (it != eq_cache_.end()) return it->second;
  // One-sided equality selector: eq -> (bit_k(a) == bit_k(b)) for all k.
  const sat::Lit eq = sat::pos(solver_.new_var());
  for (std::size_t k = 0; k < nbits_; ++k) {
    solver_.add_clause(eq.neg(), vars_[a][k].neg(), vars_[b][k]);
    solver_.add_clause(eq.neg(), vars_[a][k], vars_[b][k].neg());
  }
  return eq_cache_.emplace(key, eq).first->second;
}

void LabelFormula::build_binary() {
  nbits_ = ceil_log2(bound_);
  vars_.resize(cells_.size());
  for (auto& bits : vars_) {
    bits.reserve(nbits_);
    for (std::size_t k = 0; k < nbits_; ++k)
      bits.push_back(sat::pos(solver_.new_var()));
  }

  // Range constraint f(e) <= bound-1 when bound is not a power of two:
  // forbid every f with (prefix equal to B, bit 1 where B has 0).
  if (bound_ < (std::size_t{1} << nbits_)) {
    const std::size_t top = bound_ - 1;
    for (std::size_t e = 0; e < cells_.size(); ++e) {
      for (std::size_t k = 0; k < nbits_; ++k) {
        if ((top >> k) & 1u) continue;
        sat::Clause clause;
        for (std::size_t j = k + 1; j < nbits_; ++j)
          clause.push_back((top >> j) & 1u ? vars_[e][j].neg() : vars_[e][j]);
        clause.push_back(vars_[e][k].neg());
        solver_.add_clause(std::move(clause));
      }
    }
  }

  if (options_.symmetry_breaking) {
    // f(first cell) = 0 (any solution can relabel that rectangle to 0).
    for (std::size_t k = 0; k < nbits_; ++k)
      solver_.add_clause(vars_[0][k].neg());
  }

  // Eq. 4 over all cross pairs.
  for (std::size_t a = 0; a < cells_.size(); ++a) {
    const auto [i, j] = cells_[a];
    for (std::size_t b = a + 1; b < cells_.size(); ++b) {
      const auto [i2, j2] = cells_[b];
      if (i == i2 || j == j2) continue;  // constraints are trivial
      const bool c1 = m_.test(i, j2);
      const bool c2 = m_.test(i2, j);
      if (!c1 || !c2) {
        // f(a) != f(b)
        solver_.add_clause(
            sat::Clause(diff_lits(a, b).begin(), diff_lits(a, b).end()));
        ++stats_.neq_pairs;
      } else {
        // (f(a) = f(b)) => f(a) = f(i, j2), and the swapped orientation.
        const auto corner1 = static_cast<std::size_t>(cell_index_[i][j2]);
        const auto corner2 = static_cast<std::size_t>(cell_index_[i2][j]);
        {
          sat::Clause clause(diff_lits(a, b).begin(), diff_lits(a, b).end());
          clause.push_back(eq_lit(a, corner1));
          solver_.add_clause(std::move(clause));
        }
        {
          sat::Clause clause(diff_lits(a, b).begin(), diff_lits(a, b).end());
          clause.push_back(eq_lit(b, corner2));
          solver_.add_clause(std::move(clause));
        }
        stats_.implication_pairs += 2;
      }
    }
  }
}

void LabelFormula::build_onehot() {
  vars_.resize(cells_.size());
  for (auto& sel : vars_) {
    sel.reserve(bound_);
    for (std::size_t t = 0; t < bound_; ++t)
      sel.push_back(sat::pos(solver_.new_var()));
  }
  const auto amo = bound_ > 8 ? sat::AmoEncoding::Commander
                              : sat::AmoEncoding::Pairwise;
  for (auto& sel : vars_) sat::add_exactly_one(solver_, sel, amo);

  // Eq. 4 per label.
  for (std::size_t a = 0; a < cells_.size(); ++a) {
    const auto [i, j] = cells_[a];
    for (std::size_t b = a + 1; b < cells_.size(); ++b) {
      const auto [i2, j2] = cells_[b];
      if (i == i2 || j == j2) continue;
      const bool c1 = m_.test(i, j2);
      const bool c2 = m_.test(i2, j);
      if (!c1 || !c2) {
        for (std::size_t t = 0; t < bound_; ++t)
          solver_.add_clause(vars_[a][t].neg(), vars_[b][t].neg());
        ++stats_.neq_pairs;
      } else {
        const auto corner1 = static_cast<std::size_t>(cell_index_[i][j2]);
        const auto corner2 = static_cast<std::size_t>(cell_index_[i2][j]);
        for (std::size_t t = 0; t < bound_; ++t) {
          solver_.add_clause(vars_[a][t].neg(), vars_[b][t].neg(),
                             vars_[corner1][t]);
          solver_.add_clause(vars_[a][t].neg(), vars_[b][t].neg(),
                             vars_[corner2][t]);
        }
        stats_.implication_pairs += 2;
      }
    }
  }

  if (options_.symmetry_breaking && bound_ >= 2 && cells_.size() >= 2) {
    // Precedence ("value ordering") symmetry breaking: cell e may open
    // label t only if label t-1 appears among cells before e. u[e][t] is a
    // one-sided prefix-use indicator for labels 0..bound-2.
    const std::size_t tmax = bound_ - 1;  // labels needing a predecessor - 1
    std::vector<std::vector<sat::Lit>> used(cells_.size() - 1);
    for (std::size_t e = 0; e + 1 < cells_.size(); ++e) {
      used[e].reserve(tmax);
      for (std::size_t t = 0; t < tmax; ++t)
        used[e].push_back(sat::pos(solver_.new_var()));
    }
    for (std::size_t e = 0; e + 1 < cells_.size(); ++e) {
      for (std::size_t t = 0; t < tmax; ++t) {
        // x[e][t] -> u[e][t];   u[e-1][t] -> u[e][t]
        solver_.add_clause(vars_[e][t].neg(), used[e][t]);
        if (e > 0) solver_.add_clause(used[e - 1][t].neg(), used[e][t]);
      }
    }
    // First cell must take label 0.
    for (std::size_t t = 1; t < bound_; ++t)
      solver_.add_clause(vars_[0][t].neg());
    // Later cells: x[e][t] -> u[e-1][t-1].
    for (std::size_t e = 1; e < cells_.size(); ++e)
      for (std::size_t t = 1; t < bound_; ++t)
        solver_.add_clause(vars_[e][t].neg(), used[e - 1][t - 1]);
  }
}

sat::SolveResult LabelFormula::solve(const sat::Budget& budget) {
  return solver_.solve({}, budget);
}

sat::Cnf LabelFormula::export_cnf() const {
  sat::Cnf cnf;
  cnf.num_vars = solver_.num_vars();
  cnf.clauses = solver_.problem_clauses();
  return cnf;
}

std::size_t LabelFormula::label_of(std::size_t cell) const {
  if (options_.encoding == LabelEncoding::OneHot) {
    for (std::size_t t = 0; t < vars_[cell].size(); ++t)
      if (solver_.model_true(vars_[cell][t])) return t;
    EBMF_ENSURES(false);  // exactly-one guarantees a hit
    return 0;
  }
  std::size_t value = 0;
  for (std::size_t k = 0; k < nbits_; ++k)
    if (solver_.model_true(vars_[cell][k])) value |= std::size_t{1} << k;
  return value;
}

Partition LabelFormula::extract_partition() const {
  EBMF_EXPECTS(solver_.has_model());
  std::vector<Rectangle> by_label(
      bound_, Rectangle{BitVec(m_.rows()), BitVec(m_.cols())});
  for (std::size_t e = 0; e < cells_.size(); ++e) {
    const std::size_t t = label_of(e);
    EBMF_ENSURES(t < bound_);
    by_label[t].rows.set(cells_[e].first);
    by_label[t].cols.set(cells_[e].second);
  }
  Partition p;
  p.reserve(bound_);
  for (auto& r : by_label)
    if (!r.empty()) p.push_back(std::move(r));
  return p;
}

void LabelFormula::forbid_label_onehot(std::size_t t) {
  for (std::size_t e = 0; e < cells_.size(); ++e)
    solver_.add_clause(vars_[e][t].neg());
}

void LabelFormula::forbid_label_binary(std::size_t value) {
  for (std::size_t e = 0; e < cells_.size(); ++e) {
    sat::Clause clause;
    clause.reserve(nbits_);
    for (std::size_t k = 0; k < nbits_; ++k)
      clause.push_back((value >> k) & 1u ? vars_[e][k].neg() : vars_[e][k]);
    solver_.add_clause(std::move(clause));
  }
}

void LabelFormula::narrow(std::size_t new_bound) {
  EBMF_EXPECTS(new_bound >= 1);
  EBMF_EXPECTS(new_bound < bound_);
  for (std::size_t v = new_bound; v < bound_; ++v) {
    if (options_.encoding == LabelEncoding::OneHot)
      forbid_label_onehot(v);
    else
      forbid_label_binary(v);
  }
  bound_ = new_bound;
}

}  // namespace ebmf::smt
