#include "ftqc/tensor.h"

namespace ebmf::ftqc {

BitVec kron(const BitVec& a, const BitVec& b) {
  BitVec out(a.size() * b.size());
  for (std::size_t i = a.find_first(); i < a.size(); i = a.find_next(i))
    for (std::size_t k = b.find_first(); k < b.size(); k = b.find_next(k))
      out.set(i * b.size() + k);
  return out;
}

Rectangle kron(const Rectangle& a, const Rectangle& b) {
  return Rectangle{kron(a.rows, b.rows), kron(a.cols, b.cols)};
}

Partition tensor_partition(const Partition& logical,
                           const Partition& physical) {
  Partition out;
  out.reserve(logical.size() * physical.size());
  for (const Rectangle& lr : logical)
    for (const Rectangle& pr : physical) out.push_back(kron(lr, pr));
  return out;
}

}  // namespace ebmf::ftqc
