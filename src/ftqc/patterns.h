#pragma once
/// \file patterns.h
/// \brief FTQC addressing-pattern constructors (paper §V, Fig. 5).
///
/// Surface-code patches: a transversal single-logical-qubit operation (X,
/// Z, H) addresses *every* data qubit of a patch — the physical pattern M
/// is all-ones with r_B = φ = 1, so the logical partition alone is optimal.
/// Richer per-patch patterns (e.g. a boundary row for lattice surgery
/// preparation, or a checkerboard sublattice) have r_B > 1 and exercise the
/// tensor bounds.
///
/// qLDPC memory blocks (Fig. 5b): blocks sit in a 1D row; each block's
/// single-qubit-gate pattern differs with the logical-qubit offsets inside
/// the block. Modeled as a (#blocks × block width) matrix, one row per
/// block; the paper conjectures row-by-row addressing is usually optimal
/// because wide random matrices are almost surely full rank.

#include "core/matrix.h"
#include "support/rng.h"

namespace ebmf::ftqc {

/// d×d all-ones physical pattern (transversal X/Z/H on one patch).
BinaryMatrix transversal_patch(std::size_t d);

/// d×d checkerboard sublattice pattern starting at parity `offset` (0 or 1).
BinaryMatrix checkerboard_patch(std::size_t d, std::size_t offset = 0);

/// d×d pattern addressing a single boundary row (index `row`).
BinaryMatrix boundary_row_patch(std::size_t d, std::size_t row = 0);

/// Random logical-level pattern: which patches of an r×c grid get the
/// operation (each with probability `occupancy`).
BinaryMatrix logical_pattern(std::size_t rows, std::size_t cols,
                             double occupancy, Rng& rng);

/// qLDPC 1D memory: `blocks` blocks of `width` qubit columns; within each
/// block, each qubit needs the gate with probability `occupancy`
/// (offset-dependent patterns in the paper's setting).
BinaryMatrix qldpc_block_pattern(std::size_t blocks, std::size_t width,
                                 double occupancy, Rng& rng);

}  // namespace ebmf::ftqc
