#include "ftqc/patterns.h"

#include "support/contracts.h"

namespace ebmf::ftqc {

BinaryMatrix transversal_patch(std::size_t d) {
  BinaryMatrix m(d, d);
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < d; ++j) m.set(i, j);
  return m;
}

BinaryMatrix checkerboard_patch(std::size_t d, std::size_t offset) {
  EBMF_EXPECTS(offset <= 1);
  BinaryMatrix m(d, d);
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < d; ++j)
      if ((i + j) % 2 == offset) m.set(i, j);
  return m;
}

BinaryMatrix boundary_row_patch(std::size_t d, std::size_t row) {
  EBMF_EXPECTS(row < d);
  BinaryMatrix m(d, d);
  for (std::size_t j = 0; j < d; ++j) m.set(row, j);
  return m;
}

BinaryMatrix logical_pattern(std::size_t rows, std::size_t cols,
                             double occupancy, Rng& rng) {
  return BinaryMatrix::random(rows, cols, occupancy, rng);
}

BinaryMatrix qldpc_block_pattern(std::size_t blocks, std::size_t width,
                                 double occupancy, Rng& rng) {
  return BinaryMatrix::random(blocks, width, occupancy, rng);
}

}  // namespace ebmf::ftqc
