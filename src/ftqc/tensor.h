#pragma once
/// \file tensor.h
/// \brief Tensor-product structure of rectangular addressing (paper §V).
///
/// In fault-tolerant settings the physical addressing pattern factors as
/// M̂ ⊗ M: the logical-level pattern M̂ of which patches get an operation,
/// tensored with the per-patch physical pattern M. Rectangle partitions
/// compose under ⊗ — the product of a partition of M̂ and one of M is a
/// partition of M̂ ⊗ M — giving the upper bound
/// r_B(M̂⊗M) ≤ r_B(M̂)·r_B(M). Whether binary rank is *multiplicative* is
/// open; Watson's fooling-set bound (Eq. 5) brackets it from below:
///
///   max( r_B(M̂)·φ(M), r_B(M)·φ(M̂) )  ≤  r_B(M̂ ⊗ M)
///
/// where φ is the maximum fooling set size.

#include "core/matrix.h"
#include "core/partition.h"

namespace ebmf::ftqc {

/// Kronecker product of two bit vectors: (a⊗b)[i·|b|+k] = a[i]·b[k].
BitVec kron(const BitVec& a, const BitVec& b);

/// Kronecker product of two rectangles (a rectangle of M̂⊗M).
Rectangle kron(const Rectangle& a, const Rectangle& b);

/// Product partition: every pair (rectangle of `logical`, rectangle of
/// `physical`), a valid EBMF of kron(logical matrix, physical matrix) with
/// |logical|·|physical| rectangles.
Partition tensor_partition(const Partition& logical,
                           const Partition& physical);

}  // namespace ebmf::ftqc
