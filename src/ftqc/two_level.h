#pragma once
/// \file two_level.h
/// \brief Two-level (logical ⊗ physical) solving and the §V bounds.

#include "core/fooling.h"
#include "engine/engine.h"
#include "ftqc/tensor.h"

namespace ebmf::ftqc {

/// Result of solving a two-level addressing problem.
struct TwoLevelResult {
  engine::SolveReport logical;   ///< Facade solve of M̂.
  engine::SolveReport physical;  ///< Facade solve of M.
  Partition product_partition;   ///< Tensor of the two partitions.
  std::size_t upper_bound = 0;  ///< |logical|·|physical| ≥ r_B(M̂⊗M).
  std::size_t lower_bound = 0;  ///< Watson's Eq. 5 fooling-set bound.
  std::size_t phi_logical = 0;  ///< φ(M̂) used in the bound.
  std::size_t phi_physical = 0; ///< φ(M) used in the bound.

  /// True when Eq. 5 already certifies the product partition optimal for
  /// the tensor problem (lower == upper).
  [[nodiscard]] bool certified_optimal() const noexcept {
    return lower_bound == upper_bound;
  }
};

/// Solve M̂ and M independently through the engine facade and combine
/// (paper §V). `base` supplies the strategy, budget, and knobs used for
/// both factors (its matrix/mask fields are ignored); the default request
/// runs the "auto" portfolio. The product partition is a valid EBMF of
/// kron(logical, physical); the result carries the Eq. 5 bracket around
/// the true tensor binary rank.
TwoLevelResult solve_two_level(const BinaryMatrix& logical,
                               const BinaryMatrix& physical,
                               const engine::SolveRequest& base = {});

/// Watson's lower bound (Eq. 5) given per-factor solutions.
std::size_t watson_lower_bound(std::size_t rb_logical, std::size_t phi_logical,
                               std::size_t rb_physical,
                               std::size_t phi_physical);

}  // namespace ebmf::ftqc
