#pragma once
/// \file two_level.h
/// \brief Two-level (logical ⊗ physical) solving and the §V bounds.

#include "core/fooling.h"
#include "ftqc/tensor.h"
#include "smt/sap.h"

namespace ebmf::ftqc {

/// Result of solving a two-level addressing problem.
struct TwoLevelResult {
  SapResult logical;            ///< SAP run on M̂.
  SapResult physical;           ///< SAP run on M.
  Partition product_partition;  ///< Tensor of the two partitions.
  std::size_t upper_bound = 0;  ///< |logical|·|physical| ≥ r_B(M̂⊗M).
  std::size_t lower_bound = 0;  ///< Watson's Eq. 5 fooling-set bound.
  std::size_t phi_logical = 0;  ///< φ(M̂) used in the bound.
  std::size_t phi_physical = 0; ///< φ(M) used in the bound.

  /// True when Eq. 5 already certifies the product partition optimal for
  /// the tensor problem (lower == upper).
  [[nodiscard]] bool certified_optimal() const noexcept {
    return lower_bound == upper_bound;
  }
};

/// Solve M̂ and M independently with SAP and combine (paper §V).
/// The product partition is a valid EBMF of kron(logical, physical); the
/// result carries the Eq. 5 bracket around the true tensor binary rank.
TwoLevelResult solve_two_level(const BinaryMatrix& logical,
                               const BinaryMatrix& physical,
                               const SapOptions& options = {});

/// Watson's lower bound (Eq. 5) given per-factor solutions.
std::size_t watson_lower_bound(std::size_t rb_logical, std::size_t phi_logical,
                               std::size_t rb_physical,
                               std::size_t phi_physical);

}  // namespace ebmf::ftqc
