#include "ftqc/two_level.h"

#include <algorithm>

namespace ebmf::ftqc {

std::size_t watson_lower_bound(std::size_t rb_logical, std::size_t phi_logical,
                               std::size_t rb_physical,
                               std::size_t phi_physical) {
  return std::max(rb_logical * phi_physical, rb_physical * phi_logical);
}

TwoLevelResult solve_two_level(const BinaryMatrix& logical,
                               const BinaryMatrix& physical,
                               const engine::SolveRequest& base) {
  const engine::Engine facade;
  TwoLevelResult out;
  engine::SolveRequest request = base;
  request.masked.reset();
  request.matrix = logical;
  out.logical = facade.solve(request);
  request.matrix = physical;
  out.physical = facade.solve(request);
  out.product_partition =
      tensor_partition(out.logical.partition, out.physical.partition);
  out.upper_bound = out.product_partition.size();
  out.phi_logical = max_fooling_set(logical).size();
  out.phi_physical = max_fooling_set(physical).size();
  // Eq. 5 needs the true r_B of each factor. When the solve proved
  // optimality the partition size is exact; otherwise substitute the lower
  // bound so the product bound stays sound (r_B appears positively).
  const std::size_t rb_logical = out.logical.proven_optimal()
                                     ? out.logical.depth()
                                     : out.logical.lower_bound;
  const std::size_t rb_physical = out.physical.proven_optimal()
                                      ? out.physical.depth()
                                      : out.physical.lower_bound;
  out.lower_bound = watson_lower_bound(rb_logical, out.phi_logical,
                                       rb_physical, out.phi_physical);
  return out;
}

}  // namespace ebmf::ftqc
