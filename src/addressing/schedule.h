#pragma once
/// \file schedule.h
/// \brief AOD pulse schedules: the hardware-facing view of a partition.
///
/// One rectangle = one acousto-optic deflector configuration: the AOD drives
/// a set of row tones and a set of column tones, and the Rz pulse lands on
/// every crossing (Fig. 1a of the paper, after Bluvstein et al.). The depth
/// the paper minimizes is the number of configurations; this module adds a
/// simple timing model (per-reconfiguration latency + per-pulse duration) so
/// examples can report schedule duration, and a renderer for humans.

#include <string>
#include <vector>

#include "core/matrix.h"
#include "core/partition.h"

namespace ebmf::addressing {

/// Timing model parameters (microseconds). Defaults are representative of
/// published atom-array experiments (AOD settling ~ microseconds; single
/// qubit Rz pulses sub-microsecond); they parameterize reports only.
struct TimingModel {
  double reconfigure_us = 10.0;  ///< AOD frequency-set settling time.
  double pulse_us = 0.5;         ///< Rz pulse duration per configuration.
};

/// One step of a schedule: an AOD configuration plus its pulse.
struct PulseStep {
  Rectangle rectangle;                 ///< Driven rows × columns.
  std::vector<std::size_t> row_tones;  ///< Sorted row indices.
  std::vector<std::size_t> col_tones;  ///< Sorted column indices.
};

/// A full addressing schedule for one pattern.
class Schedule {
 public:
  /// Build a schedule executing `partition` on pattern `m`.
  /// Precondition: partition is a valid EBMF of m (checked).
  Schedule(const BinaryMatrix& m, const Partition& partition,
           TimingModel timing = {});

  /// Number of AOD configurations (the paper's depth).
  [[nodiscard]] std::size_t depth() const noexcept { return steps_.size(); }

  /// Total schedule duration under the timing model.
  [[nodiscard]] double duration_us() const noexcept;

  /// The steps in execution order.
  [[nodiscard]] const std::vector<PulseStep>& steps() const noexcept {
    return steps_;
  }

  /// Number of control channels used: rows + columns of the array — the
  /// quadratic saving over per-site control the paper motivates.
  [[nodiscard]] std::size_t control_channels() const noexcept {
    return rows_ + cols_;
  }

  /// Human-readable rendering (one line per step).
  [[nodiscard]] std::string render() const;

 private:
  std::vector<PulseStep> steps_;
  TimingModel timing_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

}  // namespace ebmf::addressing
