#include "addressing/schedule.h"

#include <sstream>

namespace ebmf::addressing {

Schedule::Schedule(const BinaryMatrix& m, const Partition& partition,
                   TimingModel timing)
    : timing_(timing), rows_(m.rows()), cols_(m.cols()) {
  const auto valid = validate_partition(m, partition);
  EBMF_EXPECTS(valid.ok);
  steps_.reserve(partition.size());
  for (const Rectangle& r : partition) {
    PulseStep step;
    step.rectangle = r;
    step.row_tones = r.rows.ones();
    step.col_tones = r.cols.ones();
    steps_.push_back(std::move(step));
  }
}

double Schedule::duration_us() const noexcept {
  return static_cast<double>(steps_.size()) *
         (timing_.reconfigure_us + timing_.pulse_us);
}

std::string Schedule::render() const {
  std::ostringstream out;
  out << "AOD schedule: depth " << depth() << ", " << control_channels()
      << " control channels, " << duration_us() << " us\n";
  for (std::size_t t = 0; t < steps_.size(); ++t) {
    const auto& s = steps_[t];
    out << "  step " << t << ": rows {";
    for (std::size_t k = 0; k < s.row_tones.size(); ++k)
      out << (k ? "," : "") << s.row_tones[k];
    out << "} x cols {";
    for (std::size_t k = 0; k < s.col_tones.size(); ++k)
      out << (k ? "," : "") << s.col_tones[k];
    out << "}  (" << s.rectangle.cell_count() << " qubits)\n";
  }
  return out.str();
}

}  // namespace ebmf::addressing
