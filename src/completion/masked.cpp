#include "completion/masked.h"

#include <vector>

#include "support/contracts.h"

namespace ebmf::completion {

MaskedMatrix MaskedMatrix::parse(const std::string& text) {
  std::vector<std::string> rows;
  std::string cur;
  for (char ch : text) {
    if (ch == ';' || ch == '\n') {
      if (!cur.empty()) rows.push_back(cur);
      cur.clear();
    } else if (ch == '0' || ch == '1' || ch == '*' || ch == 'x') {
      cur.push_back(ch);
    } else {
      EBMF_EXPECTS(ch == ' ' || ch == '\t' || ch == '\r');
    }
  }
  if (!cur.empty()) rows.push_back(cur);
  EBMF_EXPECTS(!rows.empty());
  MaskedMatrix m(rows.size(), rows[0].size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EBMF_EXPECTS(rows[i].size() == rows[0].size());
    for (std::size_t j = 0; j < rows[i].size(); ++j) {
      switch (rows[i][j]) {
        case '1':
          m.set(i, j, Cell::One);
          break;
        case '*':
        case 'x':
          m.set(i, j, Cell::DontCare);
          break;
        default:
          break;  // '0'
      }
    }
  }
  return m;
}

void MaskedMatrix::set(std::size_t i, std::size_t j, Cell c) {
  pattern_.set(i, j, c == Cell::One);
  mask_.set(i, j, c == Cell::DontCare);
}

bool validate_masked(const MaskedMatrix& m, const Partition& p,
                     bool at_most_once, std::string* why) {
  const auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  std::vector<std::vector<unsigned>> cover(
      m.rows(), std::vector<unsigned>(m.cols(), 0));
  for (std::size_t t = 0; t < p.size(); ++t) {
    const Rectangle& r = p[t];
    if (r.rows.size() != m.rows() || r.cols.size() != m.cols())
      return fail("rectangle " + std::to_string(t) + " has wrong shape");
    if (r.empty())
      return fail("rectangle " + std::to_string(t) + " is empty");
    for (std::size_t i = r.rows.find_first(); i < m.rows();
         i = r.rows.find_next(i))
      for (std::size_t j = r.cols.find_first(); j < m.cols();
           j = r.cols.find_next(j))
        ++cover[i][j];
  }
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      switch (m.at(i, j)) {
        case Cell::Zero:
          if (cover[i][j] != 0)
            return fail("zero cell covered at (" + std::to_string(i) + "," +
                        std::to_string(j) + ")");
          break;
        case Cell::One:
          if (cover[i][j] != 1)
            return fail("one cell covered " + std::to_string(cover[i][j]) +
                        " times at (" + std::to_string(i) + "," +
                        std::to_string(j) + ")");
          break;
        case Cell::DontCare:
          if (at_most_once && cover[i][j] > 1)
            return fail("don't-care covered twice at (" + std::to_string(i) +
                        "," + std::to_string(j) + ")");
          break;
      }
    }
  }
  return true;
}

}  // namespace ebmf::completion
