#pragma once
/// \file completion_solver.h
/// \brief Minimum-rectangle addressing with don't-cares (binary matrix
/// completion; paper §VI future work).
///
/// The SAT encoding extends the one-hot label formula: cells that must be
/// addressed carry an exactly-one selector row; don't-care cells carry free
/// selectors (optionally at-most-one under completion semantics). The
/// rectangle-closure constraints of Eq. 1 then range over 1-cells and
/// don't-cares alike: two cells sharing a rectangle force their crossing
/// cells into it, and a crossing 0 forbids sharing.
///
/// Upper bound / anytime solution: row packing on the pattern with
/// don't-cares read as 0 (always valid — DC cells simply go unaddressed).
/// The solver then decreases the bound until UNSAT or budget exhaustion;
/// the don't-cares can push the optimum *below* rank_ℝ(pattern), so no rank
/// cutoff applies (the loop runs to b = 1).

#include "completion/masked.h"
#include "core/row_packing.h"
#include "sat/solver.h"

namespace ebmf::completion {

/// How don't-care cells may be covered.
enum class DontCareSemantics {
  Free,        ///< Any number of covering rectangles (vacancy-exact).
  AtMostOnce,  ///< At most one (exact partition of a completion).
};

/// Options for solve_masked.
struct CompletionOptions {
  DontCareSemantics semantics = DontCareSemantics::Free;
  RowPackingOptions packing;  ///< For the upper-bound phase.
  Budget budget;              ///< Shared deadline/conflict/cancel budget.
  bool use_sat = true;
};

/// Greedy fooling-set-style lower bound valid under don't-cares: 1-cells
/// that pairwise cannot share a rectangle because a crossing cell is a hard
/// Zero. Result ≤ r_B under either semantics.
std::size_t masked_fooling_lower_bound(const MaskedMatrix& m);

/// Result of solve_masked.
struct CompletionResult {
  Partition partition;       ///< Valid under the chosen semantics.
  bool proven_optimal = false;
  std::size_t heuristic_size = 0;  ///< Upper bound from DC-as-0 packing.
  double seconds = 0.0;
};

/// Minimize the number of rectangles addressing `m`'s 1-cells, exploiting
/// don't-cares. Postcondition: validate_masked(m, result.partition,
/// semantics==AtMostOnce) holds; empty partition iff no 1-cells.
CompletionResult solve_masked(const MaskedMatrix& m,
                              const CompletionOptions& options = {});

}  // namespace ebmf::completion
