#include "completion/masked_packing.h"

#include <numeric>

#include "support/rng.h"
#include "support/stopwatch.h"

namespace ebmf::completion {

Partition masked_packing_pass(const MaskedMatrix& m,
                              const std::vector<std::size_t>& row_order) {
  detail::check_row_order(m.rows(), row_order);
  Partition p;
  for (std::size_t row_index : row_order) {
    EBMF_EXPECTS(row_index < m.rows());
    const BitVec& ones = m.pattern().row(row_index);
    if (ones.none()) continue;
    // Cells a rectangle may touch in this row: 1s or vacancies.
    BitVec allowed = ones | m.mask().row(row_index);
    BitVec remaining = ones;
    for (auto& rect : p) {
      if (remaining.none()) break;
      if (!rect.cols.subset_of(allowed)) continue;
      // The 1s this rectangle would cover must all be uncovered, and it
      // must cover at least one (otherwise growing is pointless).
      const BitVec covers = rect.cols & ones;
      if (covers.none() || !covers.subset_of(remaining)) continue;
      rect.rows.set(row_index);
      remaining -= covers;
    }
    if (remaining.none()) continue;
    BitVec new_rows(m.rows());
    new_rows.set(row_index);
    p.push_back(Rectangle{std::move(new_rows), std::move(remaining)});
  }
  EBMF_ENSURES(validate_masked(m, p, /*at_most_once=*/false));
  return p;
}

RowPackingResult masked_row_packing(const MaskedMatrix& m,
                                    const RowPackingOptions& options) {
  Stopwatch timer;
  RowPackingResult best;
  Rng rng(options.seed);
  const std::size_t trials = std::max<std::size_t>(options.trials, 1);
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<std::size_t> order(m.rows());
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (options.order == RowOrder::Shuffle) rng.shuffle(order);
    Partition candidate = masked_packing_pass(m, order);
    if (best.trials_run == 0 || candidate.size() < best.partition.size())
      best.partition = std::move(candidate);
    ++best.trials_run;
    if (options.stop_at != 0 && best.partition.size() <= options.stop_at)
      break;
    if (options.budget.exhausted()) break;
    if (options.order != RowOrder::Shuffle) break;
  }
  best.seconds = timer.seconds();
  return best;
}

}  // namespace ebmf::completion
