#include "completion/completion_solver.h"

#include <algorithm>

#include "completion/masked_packing.h"
#include "sat/cardinality.h"
#include "support/stopwatch.h"

namespace ebmf::completion {

std::size_t masked_fooling_lower_bound(const MaskedMatrix& m) {
  std::vector<std::pair<std::size_t, std::size_t>> chosen;
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (m.at(i, j) != Cell::One) continue;
      const bool ok = std::all_of(
          chosen.begin(), chosen.end(), [&](const auto& c) {
            return m.at(c.first, j) == Cell::Zero ||
                   m.at(i, c.second) == Cell::Zero;
          });
      if (ok) chosen.emplace_back(i, j);
    }
  return chosen.size();
}

namespace {

/// One-hot CNF for "the 1-cells of m are addressable with <= bound
/// rectangles" under the chosen don't-care semantics.
class MaskedFormula {
 public:
  MaskedFormula(const MaskedMatrix& m, std::size_t bound,
                DontCareSemantics semantics)
      : m_(&m), bound_(bound) {
    // Cell universe: all Ones first, then all DontCares.
    for (std::size_t i = 0; i < m.rows(); ++i)
      for (std::size_t j = 0; j < m.cols(); ++j)
        if (m.at(i, j) == Cell::One) cells_.emplace_back(i, j);
    n_ones_ = cells_.size();
    for (std::size_t i = 0; i < m.rows(); ++i)
      for (std::size_t j = 0; j < m.cols(); ++j)
        if (m.at(i, j) == Cell::DontCare) cells_.emplace_back(i, j);

    cell_at_.assign(m.rows(), std::vector<std::int32_t>(m.cols(), -1));
    for (std::size_t e = 0; e < cells_.size(); ++e)
      cell_at_[cells_[e].first][cells_[e].second] =
          static_cast<std::int32_t>(e);

    vars_.resize(cells_.size());
    for (auto& sel : vars_) {
      sel.reserve(bound_);
      for (std::size_t t = 0; t < bound_; ++t)
        sel.push_back(sat::pos(solver_.new_var()));
    }
    const auto amo = bound_ > 8 ? sat::AmoEncoding::Commander
                                : sat::AmoEncoding::Pairwise;
    for (std::size_t e = 0; e < n_ones_; ++e)
      sat::add_exactly_one(solver_, vars_[e], amo);
    if (semantics == DontCareSemantics::AtMostOnce)
      for (std::size_t e = n_ones_; e < cells_.size(); ++e)
        sat::add_at_most_one(solver_, vars_[e], amo);

    // Eq. 1 closure over all non-Zero cross pairs.
    for (std::size_t a = 0; a < cells_.size(); ++a) {
      const auto [i, j] = cells_[a];
      for (std::size_t b = a + 1; b < cells_.size(); ++b) {
        const auto [i2, j2] = cells_[b];
        if (i == i2 || j == j2) continue;
        const bool zero_cross = m.at(i, j2) == Cell::Zero ||
                                m.at(i2, j) == Cell::Zero;
        if (zero_cross) {
          for (std::size_t t = 0; t < bound_; ++t)
            solver_.add_clause(vars_[a][t].neg(), vars_[b][t].neg());
        } else {
          const auto c1 = static_cast<std::size_t>(cell_at_[i][j2]);
          const auto c2 = static_cast<std::size_t>(cell_at_[i2][j]);
          for (std::size_t t = 0; t < bound_; ++t) {
            solver_.add_clause(vars_[a][t].neg(), vars_[b][t].neg(),
                               vars_[c1][t]);
            solver_.add_clause(vars_[a][t].neg(), vars_[b][t].neg(),
                               vars_[c2][t]);
          }
        }
      }
    }

    // Precedence symmetry breaking over the one-cells (don't-care-only
    // rectangles are droppable, so WLOG labels are opened by one-cells in
    // order).
    if (bound_ >= 2 && n_ones_ >= 2) {
      const std::size_t tmax = bound_ - 1;
      std::vector<std::vector<sat::Lit>> used(n_ones_ - 1);
      for (std::size_t e = 0; e + 1 < n_ones_; ++e) {
        for (std::size_t t = 0; t < tmax; ++t)
          used[e].push_back(sat::pos(solver_.new_var()));
      }
      for (std::size_t e = 0; e + 1 < n_ones_; ++e)
        for (std::size_t t = 0; t < tmax; ++t) {
          solver_.add_clause(vars_[e][t].neg(), used[e][t]);
          if (e > 0) solver_.add_clause(used[e - 1][t].neg(), used[e][t]);
        }
      for (std::size_t t = 1; t < bound_; ++t)
        solver_.add_clause(vars_[0][t].neg());
      for (std::size_t e = 1; e < n_ones_; ++e)
        for (std::size_t t = 1; t < bound_; ++t)
          solver_.add_clause(vars_[e][t].neg(), used[e - 1][t - 1]);
    }
  }

  sat::SolveResult solve(const sat::Budget& budget) {
    return solver_.solve({}, budget);
  }

  void narrow(std::size_t new_bound) {
    EBMF_EXPECTS(new_bound < bound_);
    for (std::size_t t = new_bound; t < bound_; ++t)
      for (std::size_t e = 0; e < cells_.size(); ++e)
        solver_.add_clause(vars_[e][t].neg());
    bound_ = new_bound;
  }

  /// Rectangles from the model: label t's members (ones and don't-cares).
  [[nodiscard]] Partition extract() const {
    Partition p;
    for (std::size_t t = 0; t < bound_; ++t) {
      Rectangle r{BitVec(m_->rows()), BitVec(m_->cols())};
      bool has_one = false;
      for (std::size_t e = 0; e < cells_.size(); ++e) {
        if (!solver_.model_true(vars_[e][t])) continue;
        r.rows.set(cells_[e].first);
        r.cols.set(cells_[e].second);
        if (e < n_ones_) has_one = true;
      }
      if (has_one) p.push_back(std::move(r));
    }
    return p;
  }

 private:
  const MaskedMatrix* m_;
  std::size_t bound_;
  std::size_t n_ones_ = 0;
  std::vector<std::pair<std::size_t, std::size_t>> cells_;
  std::vector<std::vector<std::int32_t>> cell_at_;
  std::vector<std::vector<sat::Lit>> vars_;
  sat::Solver solver_;
};

}  // namespace

CompletionResult solve_masked(const MaskedMatrix& m,
                              const CompletionOptions& options) {
  Stopwatch timer;
  CompletionResult result;

  // The packing phase inherits the solve-wide budget unless it has its own.
  RowPackingOptions packing = options.packing;
  if (!packing.budget.limited()) packing.budget = options.budget;

  // Upper bound: ignore don't-cares entirely (always valid) ...
  RowPackingResult packed = row_packing_ebmf(m.pattern(), packing);
  result.partition = std::move(packed.partition);
  // ... and, under Free semantics, also try the vacancy-aware packing that
  // lets rectangles extend across don't-cares (it may overlap on them, so
  // it is not admissible for AtMostOnce).
  if (options.semantics == DontCareSemantics::Free &&
      m.dont_care_count() > 0) {
    RowPackingResult masked = masked_row_packing(m, packing);
    if (masked.partition.size() < result.partition.size())
      result.partition = std::move(masked.partition);
  }
  result.heuristic_size = result.partition.size();
  if (result.partition.empty()) {  // no 1-cells at all
    result.proven_optimal = true;
    result.seconds = timer.seconds();
    return result;
  }

  const std::size_t lower = std::max<std::size_t>(
      masked_fooling_lower_bound(m), 1);
  if (result.partition.size() == lower || !options.use_sat) {
    result.proven_optimal = result.partition.size() == lower;
    result.seconds = timer.seconds();
    return result;
  }

  std::size_t b = result.partition.size() - 1;
  MaskedFormula formula(m, b, options.semantics);
  while (b >= lower) {
    const auto answer = formula.solve(options.budget);
    if (answer == sat::SolveResult::Sat) {
      Partition p = formula.extract();
      EBMF_ENSURES(validate_masked(
          m, p, options.semantics == DontCareSemantics::AtMostOnce));
      result.partition = std::move(p);
      if (result.partition.size() <= lower) {
        result.proven_optimal = true;
        break;
      }
      const std::size_t next = result.partition.size() - 1;
      formula.narrow(next);
      b = next;
    } else if (answer == sat::SolveResult::Unsat) {
      result.proven_optimal = true;
      break;
    } else {
      break;
    }
    if (options.budget.exhausted()) break;
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace ebmf::completion
