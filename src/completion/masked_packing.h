#pragma once
/// \file masked_packing.h
/// \brief Row packing adapted to don't-cares (vacancies).
///
/// The plain heuristic upper bound for a masked pattern treats vacancies as
/// 0s, which forfeits exactly the benefit vacancies offer: rectangles that
/// extend across them. This variant adapts Algorithm 2's packing step to
/// the Free semantics:
///
///  * a basis rectangle with column set C can grow into row i when
///    C ⊆ ones(i) ∪ dontcares(i) and the ones it covers in row i are all
///    still uncovered (ones must be covered exactly once; vacancies are
///    unconstrained);
///  * the residue of row i (uncovered ones after all fits) becomes a new
///    basis vector as usual.
///
/// The result is always valid under Free semantics and never worse than
/// DC-as-0 packing on instances where no basis vector fits through a
/// vacancy... it can be *better* precisely when vacancies bridge rows.

#include "completion/masked.h"
#include "core/row_packing.h"

namespace ebmf::completion {

/// One masked packing pass over rows in `row_order`.
Partition masked_packing_pass(const MaskedMatrix& m,
                              const std::vector<std::size_t>& row_order);

/// Multi-trial masked packing (shuffled row orders, best kept).
/// The partition is valid under Free semantics (validate_masked(..., false)).
RowPackingResult masked_row_packing(const MaskedMatrix& m,
                                    const RowPackingOptions& options = {});

}  // namespace ebmf::completion
