#pragma once
/// \file masked.h
/// \brief Patterns with vacancies (don't-care sites) — the paper's §VI
/// extension.
///
/// Atom arrays have empty traps: those sites hold no qubit, so it is
/// irrelevant whether or how often a pulse lands there. A MaskedMatrix
/// annotates a 0/1 pattern with a don't-care mask; rectangles may cover
/// don't-care cells freely, which can only reduce (never increase) the
/// number of rectangles needed. Two semantics are supported by the solver:
///
///  * Free     — a don't-care may be covered any number of times
///               (physically exact for vacancies);
///  * AtMostOnce — a don't-care may be covered at most once, i.e. the
///               rectangles form an exact partition of some *completion*
///               of the pattern (the binary matrix completion problem the
///               paper cites).
///
/// r_B^{Free} ≤ r_B^{AtMostOnce} ≤ r_B(M with don't-cares as 0).

#include <string>

#include "core/matrix.h"
#include "core/partition.h"

namespace ebmf::completion {

/// Cell classification of a masked pattern.
enum class Cell : unsigned char {
  Zero,     ///< Qubit present, must NOT be addressed.
  One,      ///< Qubit present, must be addressed exactly once.
  DontCare  ///< Vacancy: addressing is unconstrained.
};

/// A 0/1 pattern plus a vacancy mask.
///
/// Invariant: the mask has the same shape as the pattern, and masked cells
/// are stored as 0 in the pattern matrix.
class MaskedMatrix {
 public:
  /// All-zero pattern, no vacancies.
  MaskedMatrix(std::size_t rows, std::size_t cols)
      : pattern_(rows, cols), mask_(rows, cols) {}

  /// Build from characters: '0', '1', and '*' or 'x' for don't-care.
  /// Rows separated by ';' or newline.
  static MaskedMatrix parse(const std::string& text);

  /// Pattern with don't-cares read as 0 (the conservative instance).
  [[nodiscard]] const BinaryMatrix& pattern() const noexcept {
    return pattern_;
  }

  /// The vacancy mask (1 = don't-care).
  [[nodiscard]] const BinaryMatrix& mask() const noexcept { return mask_; }

  [[nodiscard]] std::size_t rows() const noexcept { return pattern_.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return pattern_.cols(); }

  /// Classify a cell.
  [[nodiscard]] Cell at(std::size_t i, std::size_t j) const {
    if (mask_.test(i, j)) return Cell::DontCare;
    return pattern_.test(i, j) ? Cell::One : Cell::Zero;
  }

  /// Set a cell's class.
  void set(std::size_t i, std::size_t j, Cell c);

  /// Number of don't-care cells.
  [[nodiscard]] std::size_t dont_care_count() const noexcept {
    return mask_.ones_count();
  }

 private:
  BinaryMatrix pattern_;
  BinaryMatrix mask_;
};

/// Validate a partition against a masked pattern: every One covered exactly
/// once, no Zero covered, DontCare coverage per `at_most_once`.
bool validate_masked(const MaskedMatrix& m, const Partition& p,
                     bool at_most_once, std::string* why = nullptr);

}  // namespace ebmf::completion
