#pragma once
/// \file frame.h
/// \brief The length-prefixed binary frame layer of the wire protocol.
///
/// A connection starts in the line-JSON protocol and may switch to frames
/// by sending exactly `{"op":"upgrade"}` (or `{"id":N,"op":"upgrade"}`) as
/// one line; the ack is a JSON line, everything after it is frames. Each
/// frame is an 8-byte little-endian header followed by the payload:
///
/// ```
///   offset 0  u32  payload_len   (1 .. max_payload; 0 is malformed)
///   offset 4  u8   type          (1 = solve request, 2 = solve report,
///                                 3 = error, 4 = JSON passthrough)
///   offset 5  u8   version       (= 1)
///   offset 6  u16  reserved      (= 0)
/// ```
///
/// Payload encodings for types 1–3 live in io/binary_io.h; a type-4 frame
/// carries one JSON request or reply line verbatim (no trailing newline),
/// so every admin verb and masked pattern rides the binary connection
/// unchanged. FrameBuffer is the incremental decoder: append bytes as they
/// arrive, pop complete frames, and surface malformed input (bad version,
/// unknown type, zero-length or oversized payload) as a hard protocol
/// error — the connection is not recoverable after one.

#include <cstddef>
#include <cstdint>
#include <string>

namespace ebmf::net {

inline constexpr std::size_t kFrameHeaderBytes = 8;
inline constexpr std::uint8_t kFrameVersion = 1;

inline constexpr std::uint8_t kFrameSolveRequest = 1;
inline constexpr std::uint8_t kFrameSolveReport = 2;
inline constexpr std::uint8_t kFrameError = 3;
inline constexpr std::uint8_t kFrameJson = 4;

/// One decoded frame.
struct Frame {
  std::uint8_t type = 0;
  std::string payload;
};

/// A parsed frame header.
struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint8_t type = 0;
};

/// Parse and validate the 8 bytes at `data` (caller guarantees the size).
/// False + `error` on a malformed header (bad version, unknown type,
/// zero-length or > `max_payload` payload) — a terminal protocol error.
bool parse_frame_header(const char* data, std::size_t max_payload,
                        FrameHeader* header, std::string* error);

/// Render a frame (header + payload) onto `out`.
void append_frame(std::string& out, std::uint8_t type,
                  const std::string& payload);

/// A complete frame as one string (convenience over append_frame).
[[nodiscard]] std::string encode_frame(std::uint8_t type,
                                       const std::string& payload);

/// Incremental frame decoder over a byte stream.
class FrameBuffer {
 public:
  enum class Pop {
    Ok,        ///< `frame` holds the next complete frame.
    NeedMore,  ///< No complete frame buffered yet.
    Bad,       ///< Malformed header; `error()` says why. Terminal.
  };

  /// `max_payload` mirrors the line protocol's max_line_bytes bound.
  explicit FrameBuffer(std::size_t max_payload) : max_payload_(max_payload) {}

  /// Feed bytes as they arrive off the socket.
  void append(const char* data, std::size_t size) {
    buffer_.append(data, size);
  }

  /// Pop the next complete frame. After Bad, every later call returns Bad.
  Pop pop(Frame* frame);

  /// Bytes buffered but not yet consumed.
  [[nodiscard]] std::size_t pending() const noexcept {
    return buffer_.size() - consumed_;
  }

  /// Diagnosis of the first malformed header ("" until Bad).
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;  // compacted away once it grows past the data
  std::size_t max_payload_;
  std::string error_;
  bool bad_ = false;
};

}  // namespace ebmf::net
