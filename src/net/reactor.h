#pragma once
/// \file reactor.h
/// \brief The event-driven I/O tier: an epoll level-triggered reactor that
/// replaces the thread-per-connection loops in the server and router.
///
/// Shape: one acceptor thread + N event-loop threads (each its own epoll
/// instance and eventfd wakeup) + a small worker pool for message handling,
/// so the event loops never block on a solve. Connections are explicit
/// state machines: bytes arrive on a loop thread, complete messages (JSON
/// lines, or binary frames after a `{"op":"upgrade"}` line flips the
/// framing — see net/frame.h) are extracted in micro-batches and handed to
/// the worker pool, at most one batch in flight per connection, so
/// pipelined replies stay in request order. Replies are enqueued on a
/// bounded per-connection write queue the owning loop drains with writev —
/// a whole micro-batch of replies corks into one syscall.
///
/// Backpressure and death:
///  * a slow reader first pauses our reads (write queue past the soft
///    limit) and is closed outright past the hard limit;
///  * an orderly FIN (half-close) is *not* an abort: buffered complete
///    messages — plus the unterminated tail `printf | nc` leaves — are
///    still processed, replies flushed, then the connection closes;
///  * a hard error (RST, EPOLLERR) aborts immediately and reports
///    `aborted=true` so the owner can cancel the in-flight solve's budget;
///  * connections idle past `idle_timeout_seconds` (when set) are reaped.
///
/// Drain (`begin_drain` → owner cancels budgets → `shutdown`): accepting
/// and reading stop, already-extracted-and-buffered complete messages are
/// still processed, write queues flush, then everything joins — no
/// accepted request is dropped without a reply.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/net.h"

namespace ebmf::net {

/// Which framing a message arrived under (and its reply should use).
enum class WireMode { Line, Binary };

/// One complete inbound message.
struct Message {
  WireMode mode = WireMode::Line;
  /// Binary mode: the frame type (kFrameSolveRequest…). Line mode: 0.
  std::uint8_t frame_type = 0;
  /// True for the exact `{"op":"upgrade"}` / `{"id":N,"op":"upgrade"}`
  /// line: input framing already flipped to Binary, the handler owes the
  /// JSON ack. Only that byte-exact form negotiates — anything else
  /// reaches the handler as an ordinary line.
  bool upgrade = false;
  /// Line text without the newline, or the frame payload.
  std::string payload;
};

class EventLoop;
class ReactorServer;

/// One accepted connection. Handlers hold it by shared_ptr; all methods
/// are safe from any thread. Reads, interest changes, and the actual
/// writev flushes happen only on the owning event loop.
class Conn : public std::enable_shared_from_this<Conn> {
 public:
  /// Enqueue raw bytes (already framed: line + '\n', or a full frame).
  /// False when the connection is closed or closing. Crossing the hard
  /// write limit aborts the connection (slow reader).
  bool send(std::string bytes);

  /// Like send() but drops the bytes instead of growing the queue past the
  /// soft limit — the watch-stream contract (a lossy tail beats wedging
  /// the loop). False only when the connection is closed.
  bool try_send(std::string bytes);

  /// Close once the write queue drains (the graceful reply-then-close).
  void close_after_flush();

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// The connection's current *input* framing (flips on upgrade). A reply
  /// producer should frame per-message via Message::mode; this is for
  /// stream writers (watch) that outlive the triggering message.
  [[nodiscard]] WireMode wire_mode() const noexcept {
    return mode_atomic_.load(std::memory_order_acquire) == 0
               ? WireMode::Line
               : WireMode::Binary;
  }

  /// Monotonic connection id (stable across the server's lifetime).
  [[nodiscard]] std::uint64_t conn_id() const noexcept { return id_; }

  /// Owner-attached per-connection state (e.g. the cancel flag).
  void set_user(std::shared_ptr<void> user);
  [[nodiscard]] std::shared_ptr<void> user() const;

 private:
  friend class EventLoop;
  friend class ReactorServer;

  Conn(int fd, std::uint64_t id, ReactorServer* server, EventLoop* loop)
      : fd_(fd), id_(id), server_(server), loop_(loop) {}

  const int fd_;
  const std::uint64_t id_;
  ReactorServer* const server_;
  EventLoop* const loop_;

  std::atomic<bool> closed_{false};
  std::atomic<int> mode_atomic_{0};  // 0 = Line, 1 = Binary (observers)
  std::atomic<std::uint64_t> last_activity_us_{0};

  // ---- input state, under in_mutex_ ------------------------------------
  mutable std::mutex in_mutex_;
  std::string in_;
  std::size_t in_consumed_ = 0;
  WireMode mode_ = WireMode::Line;
  bool processing_ = false;       // a batch is queued/running on a worker
  bool peer_half_closed_ = false; // FIN seen; tail may still need serving
  bool tail_flushed_ = false;     // the unterminated tail was delivered
  std::shared_ptr<void> user_;

  // ---- output state, under out_mutex_ ----------------------------------
  mutable std::mutex out_mutex_;
  std::deque<std::string> out_;
  std::size_t out_head_offset_ = 0;  // bytes of out_.front() already sent
  std::size_t out_bytes_ = 0;
  bool flush_queued_ = false;   // a flush command is pending on the loop
  bool closing_after_flush_ = false;

  // ---- loop-thread-only bookkeeping ------------------------------------
  bool registered_ = false;     // in the loop's epoll set
  bool want_write_ = false;     // EPOLLOUT armed
  bool read_paused_write_ = false;  // backpressure: slow reader
  bool read_paused_input_ = false;  // backpressure: handler behind
  bool half_closed_seen_ = false;   // FIN handled (loop-side view)
};

using ConnPtr = std::shared_ptr<Conn>;

/// Reactor tuning. Defaults fit both tiers; the servers surface the
/// interesting ones as CLI options.
struct ReactorOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t event_loops = 2;        ///< epoll loop threads.
  std::size_t workers = 0;            ///< Handler threads (0 = auto).
  std::size_t max_batch = 32;         ///< Messages handed per on_batch.
  std::size_t max_message_bytes = 4u << 20;  ///< Line/frame size cap.
  std::size_t write_soft_limit = 4u << 20;   ///< Pause reads above this.
  std::size_t write_hard_limit = 64u << 20;  ///< Abort the conn above this.
  double idle_timeout_seconds = 0.0;  ///< Reap idle conns (0 = never).
};

/// Owner hooks. on_open/on_close run on a loop thread and must not block;
/// on_batch runs on a worker thread and may (that is the point).
struct ReactorCallbacks {
  std::function<void(const ConnPtr&)> on_open;
  /// At most one call in flight per connection; messages are in arrival
  /// order. Replies go through conn->send() with per-message framing.
  std::function<void(const ConnPtr&, std::vector<Message>)> on_batch;
  /// Render the reply for a fatal protocol error (oversized line, bad
  /// frame header) in the given mode — raw bytes, framing included. The
  /// connection closes after it flushes. Null: a bare JSON error line.
  std::function<std::string(WireMode, const std::string& message)>
      protocol_error_reply;
  /// `aborted` = death with work possibly in flight (RST, EPOLLERR, write
  /// overflow) — the owner should cancel the connection's budget. An
  /// orderly close reports aborted=false.
  std::function<void(const ConnPtr&, bool aborted)> on_close;
};

/// A fixed pool of handler threads fed by a mutex+cv deque.
class WorkerPool {
 public:
  void start(std::size_t threads);
  void post(std::function<void()> task);
  void stop();  // drains the queue, then joins

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

 private:
  void run();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// The acceptor + loops + workers bundle a server tier runs on.
class ReactorServer {
 public:
  ReactorServer(ReactorOptions options, ReactorCallbacks callbacks);
  ~ReactorServer();

  ReactorServer(const ReactorServer&) = delete;
  ReactorServer& operator=(const ReactorServer&) = delete;

  /// Bind, spin up loops/workers/acceptor. Throws on bind failure.
  void start();

  /// The resolved listening port (after start()).
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Stop accepting and reading. Messages already buffered keep flowing to
  /// on_batch; call shutdown() to finish. Idempotent.
  void begin_drain();

  /// Complete the drain: wait for in-flight batches, flush write queues
  /// (bounded), close every connection, join all threads. Idempotent.
  void shutdown();

  /// Snapshot of the live connections (for budget cancellation on drain
  /// and diagnostics).
  [[nodiscard]] std::vector<ConnPtr> connections() const;

  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

 private:
  friend class Conn;
  friend class EventLoop;

  void accept_loop();
  void adopt(int fd);
  /// Run the handler batch for `conn`, then keep extracting until the
  /// input is drained (the per-connection strand; runs on a worker).
  void run_batches(const ConnPtr& conn, std::vector<Message> batch);
  /// Extract + dispatch if idle; called after reads and batch completion.
  void dispatch_input(const ConnPtr& conn);
  /// Extraction under conn->in_mutex_ (caller holds it). Returns false on
  /// a fatal protocol error with `error` set.
  bool extract_locked(const ConnPtr& conn, std::vector<Message>* batch,
                      std::string* error);
  void protocol_error(const ConnPtr& conn, WireMode mode,
                      const std::string& message);
  void note_closed(const ConnPtr& conn, bool aborted);

  ReactorOptions options_;
  ReactorCallbacks callbacks_;

  service::net::TcpListener listener_;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  WorkerPool workers_;

  mutable std::mutex conns_mutex_;
  std::vector<ConnPtr> conns_;

  std::atomic<std::uint64_t> next_conn_id_{1};
  std::atomic<std::size_t> next_loop_{0};
  std::atomic<std::size_t> batches_in_flight_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace ebmf::net
