// Binary frame encoding and the incremental stream decoder.

#include "net/frame.h"

#include <cstring>

namespace ebmf::net {

namespace {

void put_u32_le(char* out, std::uint32_t value) {
  out[0] = static_cast<char>(value & 0xff);
  out[1] = static_cast<char>((value >> 8) & 0xff);
  out[2] = static_cast<char>((value >> 16) & 0xff);
  out[3] = static_cast<char>((value >> 24) & 0xff);
}

std::uint32_t get_u32_le(const char* in) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[3])) << 24);
}

}  // namespace

void append_frame(std::string& out, std::uint8_t type,
                  const std::string& payload) {
  char header[kFrameHeaderBytes];
  put_u32_le(header, static_cast<std::uint32_t>(payload.size()));
  header[4] = static_cast<char>(type);
  header[5] = static_cast<char>(kFrameVersion);
  header[6] = 0;
  header[7] = 0;
  out.append(header, kFrameHeaderBytes);
  out.append(payload);
}

std::string encode_frame(std::uint8_t type, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  append_frame(out, type, payload);
  return out;
}

bool parse_frame_header(const char* data, std::size_t max_payload,
                        FrameHeader* header, std::string* error) {
  header->payload_len = get_u32_le(data);
  header->type = static_cast<std::uint8_t>(data[4]);
  const std::uint8_t version = static_cast<std::uint8_t>(data[5]);
  if (version != kFrameVersion) {
    *error = "unsupported frame version " + std::to_string(version);
    return false;
  }
  if (header->type < kFrameSolveRequest || header->type > kFrameJson) {
    *error = "unknown frame type " + std::to_string(header->type);
    return false;
  }
  if (data[6] != 0 || data[7] != 0) {
    // Reject now so the bytes stay meaningful for a future version.
    *error = "nonzero reserved header bytes";
    return false;
  }
  if (header->payload_len == 0) {
    *error = "zero-length frame";
    return false;
  }
  if (header->payload_len > max_payload) {
    *error = "frame payload of " + std::to_string(header->payload_len) +
             " bytes exceeds the " + std::to_string(max_payload) +
             "-byte limit";
    return false;
  }
  return true;
}

FrameBuffer::Pop FrameBuffer::pop(Frame* frame) {
  if (bad_) return Pop::Bad;
  if (pending() < kFrameHeaderBytes) return Pop::NeedMore;
  FrameHeader header;
  if (!parse_frame_header(buffer_.data() + consumed_, max_payload_, &header,
                          &error_)) {
    bad_ = true;
    return Pop::Bad;
  }
  if (pending() < kFrameHeaderBytes + header.payload_len)
    return Pop::NeedMore;
  frame->type = header.type;
  frame->payload.assign(buffer_.data() + consumed_ + kFrameHeaderBytes,
                        header.payload_len);
  consumed_ += kFrameHeaderBytes + header.payload_len;
  // Compact once the dead prefix dominates, keeping appends amortized O(1).
  if (consumed_ > 65536 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  return Pop::Ok;
}

}  // namespace ebmf::net
