#include "net/frame_client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

#include "io/binary_io.h"
#include "net/frame.h"
#include "service/net.h"

namespace ebmf::net {

namespace snet = ebmf::service::net;

namespace {

// Client sockets are not budget-bound the way the server's are; accept
// anything up to the frame layer's practical ceiling.
constexpr std::size_t kMaxReplyPayload = 64u << 20;

}  // namespace

FrameClient::FrameClient(const std::string& host, std::uint16_t port)
    : fd_(snet::tcp_connect(host, port)) {}

FrameClient::~FrameClient() { close(); }

void FrameClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FrameClient::send_bytes(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw std::runtime_error("connection lost mid-send");
    sent += static_cast<std::size_t>(n);
  }
}

void FrameClient::send_json(const std::string& line) {
  if (binary_) {
    send_bytes(encode_frame(kFrameJson, line));
  } else {
    send_bytes(line + "\n");
  }
}

void FrameClient::send_request(const io::WireRequest& wire) {
  if (binary_ && wire.op == io::WireOp::Solve && !wire.request.masked) {
    send_bytes(
        encode_frame(kFrameSolveRequest, io::binary_request_payload(wire)));
    return;
  }
  send_json(io::wire_request_json(wire));
}

bool FrameClient::upgrade() {
  if (binary_) return true;
  send_bytes("{\"op\":\"upgrade\"}\n");
  // The ack is the connection's last line-framed reply; buffered bytes
  // after its newline (possible when requests were pipelined behind the
  // upgrade) already belong to the frame protocol.
  std::string line;
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      break;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw std::runtime_error("connection lost awaiting upgrade");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  binary_ = line.find("\"upgraded\":true") != std::string::npos;
  return binary_;
}

std::string FrameClient::read_reply() {
  if (!binary_) {
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return line;
      }
      char chunk[16384];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) throw std::runtime_error("server closed the connection");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }
  while (true) {
    if (buffer_.size() >= kFrameHeaderBytes) {
      FrameHeader header;
      std::string error;
      if (!parse_frame_header(buffer_.data(), kMaxReplyPayload, &header,
                              &error))
        throw std::runtime_error("malformed reply frame: " + error);
      if (buffer_.size() >= kFrameHeaderBytes + header.payload_len) {
        const std::string payload =
            buffer_.substr(kFrameHeaderBytes, header.payload_len);
        buffer_.erase(0, kFrameHeaderBytes + header.payload_len);
        return normalize_reply(header.type, payload);
      }
    }
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw std::runtime_error("server closed the connection");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string FrameClient::normalize_reply(std::uint8_t type,
                                         const std::string& payload) {
  switch (type) {
    case kFrameJson:
      return payload;
    case kFrameError: {
      const io::BinaryError be = io::parse_binary_error(payload);
      return snet::error_json(be.message, be.label, be.id);
    }
    case kFrameSolveReport: {
      io::BinaryReply br = io::parse_binary_report(payload);
      std::string reply = io::wire_response_json(
          br.report, br.render_partition && !br.report.partition.empty(),
          br.id);
      const auto splice = [&reply](const std::string& key,
                                   const std::string& body) {
        if (body.empty() || reply.empty() || reply.back() != '}') return;
        reply.pop_back();
        reply += "," + key + ":" + body + "}";
      };
      splice("\"events\"", br.events_json);
      if (!br.spans_json.empty())
        splice("\"trace\"", "{\"spans\":" + br.spans_json + "}");
      return reply;
    }
    default:
      throw std::runtime_error("unexpected reply frame type " +
                               std::to_string(type));
  }
}

}  // namespace ebmf::net
