// The epoll level-triggered reactor: event loops, the per-connection
// strand, bounded write queues flushed with writev, and drain.

#include "net/reactor.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "io/json.h"
#include "net/frame.h"
#include "support/fault.h"

namespace ebmf::net {

namespace {

std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Only the byte-exact `{"op":"upgrade"}` / `{"id":<digits>,"op":"upgrade"}`
/// forms negotiate — the extractor must flip the input framing before the
/// handler ever sees the line, so the check cannot afford (or tolerate) a
/// JSON parse's flexibility. Variants reach the handler as ordinary lines
/// and earn an explanatory error there.
bool is_upgrade_line(const std::string& line) {
  static constexpr char kBare[] = "{\"op\":\"upgrade\"}";
  if (line == kBare) return true;
  static constexpr char kIdPrefix[] = "{\"id\":";
  constexpr std::size_t kIdPrefixLen = sizeof kIdPrefix - 1;
  if (line.rfind(kIdPrefix, 0) != 0) return false;
  std::size_t pos = kIdPrefixLen;
  if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') return false;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') ++pos;
  static constexpr char kTail[] = ",\"op\":\"upgrade\"}";
  return line.compare(pos, std::string::npos, kTail) == 0;
}

constexpr int kMaxEvents = 64;
constexpr int kEpollTickMs = 200;
constexpr std::size_t kReadChunk = 65536;
constexpr int kMaxIov = 64;

}  // namespace

// ---------------------------------------------------------------------------
// WorkerPool

void WorkerPool::start(std::size_t threads) {
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    threads_.emplace_back([this] { run(); });
}

void WorkerPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void WorkerPool::run() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void WorkerPool::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_)
    if (thread.joinable()) thread.join();
  threads_.clear();
}

// ---------------------------------------------------------------------------
// EventLoop

class EventLoop {
 public:
  explicit EventLoop(ReactorServer* server) : server_(server) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) service::net::sys_fail("epoll_create1");
    event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (event_fd_ < 0) service::net::sys_fail("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = event_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);
  }

  ~EventLoop() {
    if (event_fd_ >= 0) ::close(event_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  void start() {
    thread_ = std::thread([this] { run(); });
  }

  void stop_and_join() {
    stopping_.store(true, std::memory_order_release);
    wake();
    if (thread_.joinable()) thread_.join();
  }

  /// Thread-safe: run `fn` on the loop thread at the next wakeup.
  void post(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(cmd_mutex_);
      commands_.push_back(std::move(fn));
    }
    wake();
  }

  // ---- loop-thread-only operations below --------------------------------

  void register_conn(const ConnPtr& conn) {
    if (server_->draining_.load(std::memory_order_acquire)) {
      conn->closed_.store(true, std::memory_order_release);
      ::close(conn->fd_);
      return;
    }
    conns_[conn->fd_] = conn;
    conn->registered_ = true;
    conn->last_activity_us_.store(steady_us(), std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(server_->conns_mutex_);
      server_->conns_.push_back(conn);
    }
    if (server_->callbacks_.on_open) server_->callbacks_.on_open(conn);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = conn->fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd_, &ev) != 0)
      close_conn(conn, /*aborted=*/true);
  }

  /// Drain the write queue with writev; arms EPOLLOUT on a short write,
  /// closes on completion when requested, and applies write backpressure.
  void flush_conn(const ConnPtr& conn) {
    if (conn->closed_.load(std::memory_order_acquire)) return;
    bool dead = false;
    bool close_when_done = false;
    bool empty = false;
    std::size_t backlog = 0;
    {
      std::lock_guard<std::mutex> lock(conn->out_mutex_);
      conn->flush_queued_ = false;
      // Fault-injection seam (EBMF_FAULT): drills drop or tear server
      // replies the way the per-line writer used to.
      if (!conn->out_.empty() && fault::should_drop_write()) {
        ::shutdown(conn->fd_, SHUT_RDWR);
        dead = true;
      }
      std::size_t budget = conn->out_bytes_;
      const std::size_t tear = dead ? 0 : fault::maybe_tear(budget);
      const bool torn = tear < budget;
      budget = tear;
      while (!dead && !conn->out_.empty() && budget > 0) {
        iovec iov[kMaxIov];
        int count = 0;
        std::size_t offset = conn->out_head_offset_;
        std::size_t planned = 0;
        for (auto it = conn->out_.begin();
             it != conn->out_.end() && count < kMaxIov && planned < budget;
             ++it) {
          std::size_t len = it->size() - offset;
          if (planned + len > budget) len = budget - planned;
          iov[count].iov_base = const_cast<char*>(it->data()) + offset;
          iov[count].iov_len = len;
          planned += len;
          ++count;
          offset = 0;
        }
        const ssize_t n = ::writev(conn->fd_, iov, count);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          dead = true;
          break;
        }
        std::size_t left = static_cast<std::size_t>(n);
        budget -= left;
        conn->out_bytes_ -= left;
        while (left > 0) {
          std::string& front = conn->out_.front();
          const std::size_t avail = front.size() - conn->out_head_offset_;
          if (left >= avail) {
            left -= avail;
            conn->out_.pop_front();
            conn->out_head_offset_ = 0;
          } else {
            conn->out_head_offset_ += left;
            left = 0;
          }
        }
      }
      if (torn && !dead) {
        ::shutdown(conn->fd_, SHUT_RDWR);
        dead = true;
      }
      empty = conn->out_.empty();
      backlog = conn->out_bytes_;
      close_when_done = conn->closing_after_flush_;
    }
    if (dead) {
      close_conn(conn, /*aborted=*/true);
      return;
    }
    if (empty && close_when_done) {
      close_conn(conn, /*aborted=*/false);
      return;
    }
    const bool want_write = !empty;
    const bool pause_read =
        backlog > server_->options_.write_soft_limit;
    const bool resume_read =
        conn->read_paused_write_ &&
        backlog <= server_->options_.write_soft_limit / 2;
    if (want_write != conn->want_write_ ||
        (pause_read && !conn->read_paused_write_) || resume_read) {
      conn->want_write_ = want_write;
      if (pause_read) conn->read_paused_write_ = true;
      if (resume_read) conn->read_paused_write_ = false;
      update_interest(conn);
    }
  }

  void update_interest(const ConnPtr& conn) {
    if (conn->closed_.load(std::memory_order_acquire) || !conn->registered_)
      return;
    const bool want_read = !server_->draining_.load(std::memory_order_acquire) &&
                           !conn->read_paused_write_ &&
                           !conn->read_paused_input_ &&
                           !conn->half_closed_seen_;
    epoll_event ev{};
    ev.events = EPOLLRDHUP;
    if (want_read) ev.events |= EPOLLIN;
    if (conn->want_write_) ev.events |= EPOLLOUT;
    ev.data.fd = conn->fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd_, &ev);
  }

  /// Close now. `aborted` = death with work possibly in flight.
  void close_conn(const ConnPtr& conn, bool aborted) {
    if (conn->closed_.exchange(true, std::memory_order_acq_rel)) return;
    if (conn->registered_) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd_, nullptr);
      conns_.erase(conn->fd_);
    }
    ::close(conn->fd_);
    server_->note_closed(conn, aborted);
  }

  /// FIN/EPOLLRDHUP: stop reading, flush the unterminated tail through the
  /// handler, close once quiescent. Explicitly NOT an abort — an in-flight
  /// solve keeps its budget (orderly `printf | nc` clients half-close).
  void half_close(const ConnPtr& conn) {
    if (conn->half_closed_seen_) return;
    conn->half_closed_seen_ = true;
    {
      std::lock_guard<std::mutex> lock(conn->in_mutex_);
      conn->peer_half_closed_ = true;
    }
    update_interest(conn);
    server_->dispatch_input(conn);
    maybe_close_quiescent(conn);
  }

  /// Close a half-closed connection once nothing is pending: no batch in
  /// flight, no extractable input, write queue flushed (or closes when it
  /// is).
  void maybe_close_quiescent(const ConnPtr& conn) {
    if (conn->closed_.load(std::memory_order_acquire)) return;
    bool quiescent = false;
    {
      std::lock_guard<std::mutex> lock(conn->in_mutex_);
      quiescent = conn->peer_half_closed_ && !conn->processing_;
    }
    if (!quiescent) return;
    bool close_now = false;
    {
      std::lock_guard<std::mutex> lock(conn->out_mutex_);
      if (conn->out_.empty())
        close_now = true;
      else
        conn->closing_after_flush_ = true;
    }
    if (close_now) close_conn(conn, /*aborted=*/false);
  }

  void read_some(const ConnPtr& conn) {
    char buf[kReadChunk];
    bool saw_eof = false;
    int rounds = 0;
    for (;;) {
      const ssize_t n = ::recv(conn->fd_, buf, sizeof buf, 0);
      if (n > 0) {
        {
          std::lock_guard<std::mutex> lock(conn->in_mutex_);
          conn->in_.append(buf, static_cast<std::size_t>(n));
        }
        conn->last_activity_us_.store(steady_us(), std::memory_order_relaxed);
        if (static_cast<std::size_t>(n) < sizeof buf) break;
        if (++rounds >= 4) break;  // fairness; level-trigger re-notifies
        continue;
      }
      if (n == 0) {
        saw_eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn, /*aborted=*/true);
      return;
    }
    server_->dispatch_input(conn);
    // Input backpressure: a handler far behind a fast writer caps buffered
    // bytes; the periodic sweep resumes reading once it catches up.
    {
      std::lock_guard<std::mutex> lock(conn->in_mutex_);
      if (!conn->read_paused_input_ && conn->processing_ &&
          conn->in_.size() - conn->in_consumed_ >
              2 * server_->options_.max_message_bytes) {
        conn->read_paused_input_ = true;
        update_interest(conn);
      }
    }
    if (saw_eof) half_close(conn);
  }

 private:
  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(event_fd_, &one, sizeof one);
  }

  void run_commands() {
    std::vector<std::function<void()>> commands;
    {
      std::lock_guard<std::mutex> lock(cmd_mutex_);
      commands.swap(commands_);
    }
    for (std::function<void()>& fn : commands) fn();
  }

  void sweep(std::uint64_t now_us) {
    // Iterate over a snapshot: close_conn mutates conns_.
    std::vector<ConnPtr> snapshot;
    snapshot.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) snapshot.push_back(conn);
    const double idle = server_->options_.idle_timeout_seconds;
    for (const ConnPtr& conn : snapshot) {
      if (conn->closed_.load(std::memory_order_acquire)) continue;
      if (conn->read_paused_input_) {
        std::unique_lock<std::mutex> lock(conn->in_mutex_);
        const bool resume = conn->in_.size() - conn->in_consumed_ <=
                            server_->options_.max_message_bytes;
        lock.unlock();
        if (resume) {
          conn->read_paused_input_ = false;
          update_interest(conn);
        }
      }
      if (conn->half_closed_seen_) {
        server_->dispatch_input(conn);
        maybe_close_quiescent(conn);
        continue;
      }
      if (idle > 0) {
        const std::uint64_t last =
            conn->last_activity_us_.load(std::memory_order_relaxed);
        if (now_us > last && static_cast<double>(now_us - last) >
                                 idle * 1e6) {
          bool busy;
          {
            std::lock_guard<std::mutex> lock(conn->in_mutex_);
            busy = conn->processing_;
          }
          std::size_t backlog;
          {
            std::lock_guard<std::mutex> lock(conn->out_mutex_);
            backlog = conn->out_bytes_;
          }
          // Reap only truly idle connections — never one we owe work.
          if (!busy && backlog == 0) close_conn(conn, /*aborted=*/false);
        }
      }
    }
  }

  void run() {
    epoll_event events[kMaxEvents];
    std::uint64_t last_sweep = steady_us();
    while (!stopping_.load(std::memory_order_acquire)) {
      const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, kEpollTickMs);
      run_commands();
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == event_fd_) {
          std::uint64_t drained = 0;
          while (::read(event_fd_, &drained, sizeof drained) > 0) {
          }
          continue;
        }
        const auto it = conns_.find(fd);
        if (it == conns_.end()) continue;
        ConnPtr conn = it->second;  // close_conn below erases the entry
        const std::uint32_t ev = events[i].events;
        if ((ev & (EPOLLIN | EPOLLRDHUP)) != 0) read_some(conn);
        if (conn->closed_.load(std::memory_order_acquire)) continue;
        if ((ev & EPOLLRDHUP) != 0) half_close(conn);
        if (conn->closed_.load(std::memory_order_acquire)) continue;
        if ((ev & EPOLLOUT) != 0) flush_conn(conn);
        if (conn->closed_.load(std::memory_order_acquire)) continue;
        if ((ev & (EPOLLERR | EPOLLHUP)) != 0)
          close_conn(conn, /*aborted=*/true);
      }
      const std::uint64_t now = steady_us();
      if (now - last_sweep > static_cast<std::uint64_t>(kEpollTickMs) * 1000) {
        sweep(now);
        last_sweep = now;
      }
    }
    // Shutdown: run any straggler commands, then close what remains.
    run_commands();
    std::vector<ConnPtr> remaining;
    remaining.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) remaining.push_back(conn);
    for (const ConnPtr& conn : remaining)
      close_conn(conn, /*aborted=*/false);
  }

  ReactorServer* const server_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::thread thread_;
  std::mutex cmd_mutex_;
  std::vector<std::function<void()>> commands_;
  std::unordered_map<int, ConnPtr> conns_;
  std::atomic<bool> stopping_{false};
};

// ---------------------------------------------------------------------------
// Conn

bool Conn::send(std::string bytes) {
  bool need_flush = false;
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(out_mutex_);
    if (closed_.load(std::memory_order_acquire) || closing_after_flush_)
      return false;
    out_bytes_ += bytes.size();
    out_.push_back(std::move(bytes));
    overflow = out_bytes_ > server_->options_.write_hard_limit;
    need_flush = !flush_queued_;
    flush_queued_ = true;
  }
  ConnPtr self = shared_from_this();
  if (overflow) {
    // Slow reader past the hard limit: the connection is beyond saving.
    loop_->post([loop = loop_, self] { loop->close_conn(self, true); });
    return false;
  }
  if (need_flush)
    loop_->post([loop = loop_, self] { loop->flush_conn(self); });
  return true;
}

bool Conn::try_send(std::string bytes) {
  {
    std::lock_guard<std::mutex> lock(out_mutex_);
    if (closed_.load(std::memory_order_acquire) || closing_after_flush_)
      return false;
    if (out_bytes_ + bytes.size() > server_->options_.write_soft_limit)
      return true;  // drop: a lossy stream frame beats wedging the conn
  }
  return send(std::move(bytes));
}

void Conn::close_after_flush() {
  {
    std::lock_guard<std::mutex> lock(out_mutex_);
    if (closed_.load(std::memory_order_acquire)) return;
    closing_after_flush_ = true;
  }
  ConnPtr self = shared_from_this();
  loop_->post([loop = loop_, self] { loop->flush_conn(self); });
}

void Conn::set_user(std::shared_ptr<void> user) {
  std::lock_guard<std::mutex> lock(in_mutex_);
  user_ = std::move(user);
}

std::shared_ptr<void> Conn::user() const {
  std::lock_guard<std::mutex> lock(in_mutex_);
  return user_;
}

// ---------------------------------------------------------------------------
// ReactorServer

ReactorServer::ReactorServer(ReactorOptions options,
                             ReactorCallbacks callbacks)
    : options_(std::move(options)), callbacks_(std::move(callbacks)) {
  if (options_.event_loops == 0) options_.event_loops = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.workers = hw == 0 ? 4 : (hw < 4 ? 4 : (hw > 16 ? 16 : hw));
  }
}

ReactorServer::~ReactorServer() { shutdown(); }

void ReactorServer::start() {
  listener_.listen(options_.host, options_.port);
  workers_.start(options_.workers);
  for (std::size_t i = 0; i < options_.event_loops; ++i) {
    loops_.push_back(std::make_unique<EventLoop>(this));
    loops_.back()->start();
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_.store(true, std::memory_order_release);
}

std::uint16_t ReactorServer::port() const noexcept {
  return listener_.port();
}

void ReactorServer::accept_loop() {
  while (!draining_.load(std::memory_order_acquire)) {
    const int fd = listener_.accept_ready(100);
    if (fd < 0) continue;
    adopt(fd);
  }
}

void ReactorServer::adopt(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  EventLoop* loop =
      loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) %
             loops_.size()]
          .get();
  ConnPtr conn(new Conn(fd, next_conn_id_.fetch_add(1), this, loop));
  loop->post([loop, conn] { loop->register_conn(conn); });
}

bool ReactorServer::extract_locked(const ConnPtr& conn,
                                   std::vector<Message>* batch,
                                   std::string* error) {
  std::string& in = conn->in_;
  std::size_t& pos = conn->in_consumed_;
  while (batch->size() < options_.max_batch) {
    const std::size_t avail = in.size() - pos;
    if (avail == 0) break;
    if (conn->mode_ == WireMode::Line) {
      const std::size_t nl = in.find('\n', pos);
      if (nl == std::string::npos) {
        if (avail > options_.max_message_bytes) {
          *error = "request line too long";
          return false;
        }
        if (conn->peer_half_closed_ && !conn->tail_flushed_) {
          // EOF with an unterminated tail: `printf | nc` never sends the
          // final newline — serve the tail as the last line.
          Message tail;
          tail.payload.assign(in, pos, std::string::npos);
          pos = in.size();
          if (!tail.payload.empty() && tail.payload.back() == '\r')
            tail.payload.pop_back();
          conn->tail_flushed_ = true;
          batch->push_back(std::move(tail));
        }
        break;
      }
      if (nl - pos > options_.max_message_bytes) {
        *error = "request line too long";
        return false;
      }
      Message message;
      message.payload.assign(in, pos, nl - pos);
      pos = nl + 1;
      if (!message.payload.empty() && message.payload.back() == '\r')
        message.payload.pop_back();
      if (is_upgrade_line(message.payload)) {
        message.upgrade = true;
        conn->mode_ = WireMode::Binary;
        conn->mode_atomic_.store(1, std::memory_order_release);
      }
      batch->push_back(std::move(message));
    } else {
      if (avail < kFrameHeaderBytes) break;
      FrameHeader header;
      if (!parse_frame_header(in.data() + pos, options_.max_message_bytes,
                              &header, error))
        return false;
      if (avail < kFrameHeaderBytes + header.payload_len) break;
      Message message;
      message.mode = WireMode::Binary;
      message.frame_type = header.type;
      message.payload.assign(in, pos + kFrameHeaderBytes, header.payload_len);
      pos += kFrameHeaderBytes + header.payload_len;
      batch->push_back(std::move(message));
    }
  }
  if (pos > 65536 && pos * 2 > in.size()) {
    in.erase(0, pos);
    pos = 0;
  }
  return true;
}

void ReactorServer::dispatch_input(const ConnPtr& conn) {
  std::vector<Message> batch;
  std::string error;
  WireMode mode = WireMode::Line;
  {
    std::lock_guard<std::mutex> lock(conn->in_mutex_);
    if (conn->closed_.load(std::memory_order_acquire) || conn->processing_)
      return;
    const bool ok = extract_locked(conn, &batch, &error);
    mode = conn->mode_;
    if (ok && batch.empty()) return;
    if (ok) conn->processing_ = true;
  }
  if (!error.empty()) {
    protocol_error(conn, mode, error);
    return;
  }
  batches_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  workers_.post([this, conn, b = std::move(batch)]() mutable {
    run_batches(conn, std::move(b));
  });
}

void ReactorServer::run_batches(const ConnPtr& conn,
                                std::vector<Message> batch) {
  for (;;) {
    callbacks_.on_batch(conn, std::move(batch));
    batch.clear();
    std::string error;
    WireMode mode = WireMode::Line;
    bool half_closed = false;
    {
      std::lock_guard<std::mutex> lock(conn->in_mutex_);
      const bool ok = extract_locked(conn, &batch, &error);
      mode = conn->mode_;
      if (!ok || batch.empty()) {
        conn->processing_ = false;
        half_closed = conn->peer_half_closed_;
      }
    }
    if (!error.empty()) {
      protocol_error(conn, mode, error);
      break;
    }
    if (batch.empty()) {
      if (half_closed) {
        ConnPtr self = conn;
        conn->loop_->post([loop = conn->loop_, self] {
          loop->maybe_close_quiescent(self);
        });
      }
      break;
    }
  }
  batches_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

void ReactorServer::protocol_error(const ConnPtr& conn, WireMode mode,
                                   const std::string& message) {
  std::string reply;
  if (callbacks_.protocol_error_reply) {
    reply = callbacks_.protocol_error_reply(mode, message);
  } else {
    reply = "{\"error\":\"" + io::json::escape(message) + "\"}\n";
  }
  conn->send(std::move(reply));
  conn->close_after_flush();
}

void ReactorServer::note_closed(const ConnPtr& conn, bool aborted) {
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end(); ++it) {
      if (it->get() == conn.get()) {
        conns_.erase(it);
        break;
      }
    }
  }
  if (callbacks_.on_close) callbacks_.on_close(conn, aborted);
}

std::vector<ConnPtr> ReactorServer::connections() const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  return conns_;
}

void ReactorServer::begin_drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  listener_.shutdown_now();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Stop reading everywhere, but push already-buffered complete messages
  // through the handlers — an accepted request is never dropped silently.
  for (const std::unique_ptr<EventLoop>& loop : loops_) {
    EventLoop* raw = loop.get();
    raw->post([this, raw] {
      for (const ConnPtr& conn : connections()) {
        raw->update_interest(conn);
        dispatch_input(conn);
      }
    });
  }
}

void ReactorServer::shutdown() {
  if (!started_.load(std::memory_order_acquire)) return;
  begin_drain();
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  // 1. Let in-flight batches finish (the owner cancelled their budgets
  // between begin_drain and here, so solvers bail at the next checkpoint).
  while (batches_in_flight_.load(std::memory_order_acquire) != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // 2. Bounded wait for write queues to flush.
  const std::uint64_t deadline = steady_us() + 5'000'000;
  for (;;) {
    std::size_t backlog = 0;
    for (const ConnPtr& conn : connections()) {
      std::lock_guard<std::mutex> lock(conn->out_mutex_);
      backlog += conn->out_bytes_;
    }
    if (backlog == 0 || steady_us() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // 3. Loops close their remaining connections on exit; then the workers.
  for (const std::unique_ptr<EventLoop>& loop : loops_)
    loop->stop_and_join();
  workers_.stop();
  listener_.close();
}

}  // namespace ebmf::net
