#pragma once
/// \file frame_client.h
/// \brief Blocking client for the negotiated wire: dial a serve/route
/// tier, optionally upgrade to the binary frame protocol, and exchange
/// requests for replies normalized back to JSON lines.
///
/// This is the client-side twin of the reactor's dual-wire extractor,
/// shared by `ebmf client --binary`, the bench_service connection suite,
/// and the protocol tests. It deliberately stays synchronous — one
/// socket, caller-driven pipelining — because its job is to *exercise*
/// the server's reactor, not to be one.
///
/// Reply normalization: whatever the wire carried (a JSON line, a type-4
/// JSON frame, a type-2 binary report, a type-3 binary error), read_reply()
/// returns the JSON text the line protocol would have produced for the
/// same exchange, so callers diff replies across wire modes byte-for-byte.
/// (One deviation: a binary report's trace member carries spans only — the
/// trace id travels in the request, so the caller already has it.)

#include <cstdint>
#include <string>

#include "io/request_io.h"

namespace ebmf::net {

class FrameClient {
 public:
  /// Dial the endpoint (throws std::runtime_error when unreachable).
  /// The connection starts in line mode; call upgrade() to negotiate.
  FrameClient(const std::string& host, std::uint16_t port);
  ~FrameClient();

  FrameClient(const FrameClient&) = delete;
  FrameClient& operator=(const FrameClient&) = delete;

  /// Send `{"op":"upgrade"}` and wait for the ack. True when the server
  /// answered `"upgraded":true` and the connection is now frame-framed;
  /// false when it answered anything else (an old server — the line
  /// connection remains perfectly usable). Throws on connection death.
  bool upgrade();

  /// True once upgrade() succeeded.
  [[nodiscard]] bool binary() const noexcept { return binary_; }

  /// Send one request in the connection's wire mode: a type-1 solve frame
  /// for plain solves on an upgraded connection, JSON otherwise (masked
  /// requests and admin verbs have no binary encoding).
  void send_request(const io::WireRequest& wire);

  /// Send pre-rendered JSON (a type-4 frame on an upgraded connection).
  void send_json(const std::string& line);

  /// Block for the next reply, normalized to a JSON line (see file
  /// comment). Throws std::runtime_error on EOF or a malformed wire.
  std::string read_reply();

  void close();

 private:
  void send_bytes(const std::string& bytes);

  /// Decode one received frame back to the JSON line the line protocol
  /// would have produced (see file comment).
  std::string normalize_reply(std::uint8_t type, const std::string& payload);

  int fd_ = -1;
  bool binary_ = false;
  std::string buffer_;  ///< Unconsumed wire bytes across read_reply calls.
};

}  // namespace ebmf::net
