#pragma once
/// \file local_search.h
/// \brief Anytime local search over rectangle covers — the strategy tier for
/// instances past the reach of the exact SAP loop (dense patterns beyond a
/// few hundred 1-cells, the 10^2–10^3-row qldpc-block and neutral-atom
/// regimes).
///
/// The search follows the restart-managed metaheuristic shape of the
/// NPBenchmark solvers: seed a valid cover from greedy rectangle extraction,
/// then improve it with tabu-guarded move operators —
///
///  * rectangle **merge**: two rectangles with identical row sets (or
///    identical column sets) consolidate into one, depth −1;
///  * **row relocation** ("row swap"): a thin rectangle's rows are
///    redistributed onto column-compatible neighbours until it empties,
///    depth −1;
///  * **split** perturbation: a tall rectangle is cut in two (depth +1) to
///    escape a stall;
///  * large-neighborhood **destroy-and-repair**: a few rectangles are torn
///    out (destroy selection is tabu-guarded against cycling), surviving
///    rectangles absorb rows of the hole, and a greedy pass re-covers the
///    residue; the move is kept only when depth does not grow.
///
/// Invariant: the working cover is a valid partition of M after every
/// accepted move, so the search can stop at *any* point — budget deadline,
/// cooperative cancel, or move cap — and return the best incumbent found.
/// Every improving incumbent is re-validated before it is recorded.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/matrix.h"
#include "core/partition.h"
#include "support/budget.h"

namespace ebmf::local {

/// Tuning knobs of one search. Defaults suit 10^2–10^3-row patterns.
struct LocalSearchOptions {
  std::uint64_t seed = 1;  ///< Deterministic stream; equal seeds ⇒ equal runs.
  Budget budget;           ///< Shared deadline / cancel / move cap.
  /// Stop as soon as the incumbent depth reaches this value (pass the best
  /// proven lower bound to stop at certified optimality). 0 = never.
  std::size_t stop_at = 0;
  /// Hard cap on destroy-and-repair moves. 0 = unlimited when the budget
  /// carries any limit, else an internal default so the search terminates.
  std::uint64_t max_moves = 0;
  /// Greedy seeding passes (shuffled row orders; best cover wins).
  std::size_t seed_trials = 4;
  /// Share of the cover destroyed per large-neighborhood move.
  double destroy_fraction = 0.12;
  /// Moves a destroyed rectangle stays tabu for re-destruction. 0 = auto.
  std::uint64_t tabu_tenure = 0;
  /// Non-improving moves before a split perturbation (and, at three times
  /// this, a fresh greedy restart).
  std::uint64_t stall_limit = 60;
};

/// One improving incumbent, in emission order.
struct Incumbent {
  std::size_t depth = 0;   ///< |cover| when recorded.
  std::uint64_t move = 0;  ///< Destroy-and-repair moves executed so far.
  double seconds = 0.0;    ///< Wall-clock offset from search start.
};

/// Search counters (the report's `local.*` telemetry).
struct LocalSearchStats {
  std::uint64_t moves = 0;        ///< Destroy-and-repair moves executed.
  std::uint64_t accepted = 0;     ///< Moves kept (depth did not grow).
  std::uint64_t rejected = 0;     ///< Moves reverted.
  std::uint64_t merges = 0;       ///< Depth saved by rectangle merges.
  std::uint64_t relocations = 0;  ///< Rectangles emptied by row relocation.
  std::uint64_t absorptions = 0;  ///< Rows grown onto surviving rectangles.
  std::uint64_t splits = 0;       ///< Perturbation splits applied.
  std::uint64_t restarts = 0;     ///< Fresh greedy reseeds after stalls.
  std::size_t seed_depth = 0;     ///< Depth of the initial greedy cover.
  std::vector<Incumbent> incumbents;  ///< Improving incumbents, in order.
};

/// The best cover found plus the search record.
struct LocalSearchResult {
  Partition partition;  ///< Best incumbent — always a valid partition of M.
  LocalSearchStats stats;
  double seconds = 0.0;
  bool reached_stop = false;  ///< True when depth ≤ stop_at ended the search.
};

/// Called for every improving incumbent (already validated) with the
/// wall-clock offset at which it was found.
using IncumbentCallback =
    std::function<void(const Partition& incumbent, double seconds)>;

/// Run the anytime local search on `m`. The result partition is a valid
/// partition of `m` (also for an exhausted/cancelled budget — the best
/// incumbent so far is returned promptly). Deterministic for a fixed seed
/// when bounded by `max_moves` rather than wall-clock.
LocalSearchResult local_search_ebmf(const BinaryMatrix& m,
                                    const LocalSearchOptions& options,
                                    const IncumbentCallback& on_incumbent = {});

}  // namespace ebmf::local
