#pragma once
/// \file probe_bounds.h
/// \brief Cheap certified lower bounds on the binary rank for the anytime
/// tier's gap reporting.
///
/// The local search cannot prove optimality on its own, so the `local`
/// strategy brackets its incumbent with the best of several fast probes.
/// All probes are *valid* lower bounds on r_B(M):
///
///  * rank over GF(2) / GF(p): rank_GF(p)(M) ≤ rank_ℚ(M) ≤ r_B(M) — a field
///    rank can only drop relative to ℚ, and Eq. 3 of the paper bounds r_B
///    by rank_ℚ. GF(2) elimination is word-parallel on the bit rows, so it
///    stays in the millisecond range even at 1000×1000.
///  * counting: D distinct nonzero rows map to distinct *nonempty* subsets
///    of the r rectangles, so 2^r − 1 ≥ D, i.e. r_B ≥ ⌈log2(D + 1)⌉ (dually
///    on columns).
///  * fooling set: no rectangle holds two fooling cells, so |S| ≤ r_B
///    (paper §II); probed greedily on small instances only.
///
/// Exact rank over ℚ (Bareiss bigints) is deliberately *not* probed — it is
/// far too slow past a few hundred rows, which is exactly the regime the
/// anytime tier exists for.

#include <cstdint>
#include <string>

#include "core/matrix.h"
#include "support/budget.h"

namespace ebmf::local {

/// The individual probe results plus the best combined bound.
struct BoundProbes {
  std::size_t best = 0;      ///< max over all probes that ran — certified.
  std::string source;        ///< Name of the winning probe ("rank_gf2", …).
  std::size_t rank_gf2 = 0;  ///< Rank over GF(2); always probed.
  std::size_t rank_modp = 0;  ///< Rank over GF(p), p = 2^31−1; 0 = skipped.
  std::size_t counting = 0;  ///< ⌈log2(D+1)⌉ over distinct rows and columns.
  std::size_t fooling = 0;   ///< Greedy fooling-set size; 0 = skipped.
  double seconds = 0.0;      ///< Total probe wall-clock.
};

/// Run the probe ladder on `m`, checking `budget` between probes (an
/// exhausted budget returns whatever bounds completed so far — each is
/// individually certified, so a partial ladder is still sound).
BoundProbes probe_lower_bounds(const BinaryMatrix& m, const Budget& budget,
                               std::uint64_t seed = 1);

}  // namespace ebmf::local
