#include "local/probe_bounds.h"

#include <algorithm>

#include "core/bounds.h"
#include "core/fooling.h"
#include "linalg/rank.h"
#include "support/stopwatch.h"

namespace ebmf::local {

namespace {

/// Cell-count ceiling below which the GF(p) rank probe always runs (dense
/// modular elimination is O(m·n·min(m,n)) on scalars). Larger instances
/// probe it only when the remaining budget clearly affords the estimate.
constexpr std::size_t kModPCellLimit = 250000;
/// Estimated seconds per scalar elimination op (calibration: 1000×1000
/// full-rank elimination ≈ 1.9 s ⇒ ~2e-9 s/op with margin).
constexpr double kModPSecondsPerOp = 2e-9;
/// Fraction of the remaining budget the GF(p) probe may claim.
constexpr double kModPBudgetShare = 0.4;
/// 1-count ceiling for the greedy fooling-set probe (pairwise checks).
constexpr std::size_t kFoolingOnesLimit = 1500;
/// The Mersenne prime 2^31 − 1 for the GF(p) probe.
constexpr std::uint64_t kProbePrime = 2147483647ull;

/// r_B ≥ ⌈log2(D+1)⌉ when M has D distinct nonzero rows: each row's
/// rectangle membership is a distinct nonempty subset of the r rectangles.
std::size_t counting_bound(std::size_t distinct) {
  std::size_t r = 0;
  // Smallest r with 2^r − 1 ≥ distinct.
  while (((std::size_t{1} << r) - 1) < distinct) ++r;
  return r;
}

void adopt(BoundProbes& probes, std::size_t value, const char* source) {
  if (value > probes.best) {
    probes.best = value;
    probes.source = source;
  }
}

}  // namespace

BoundProbes probe_lower_bounds(const BinaryMatrix& m, const Budget& budget,
                               std::uint64_t seed) {
  Stopwatch clock;
  BoundProbes probes;
  if (m.is_zero()) {
    probes.source = "zero";
    probes.seconds = clock.seconds();
    return probes;
  }

  // GF(2) rank: word-parallel, the always-on probe.
  probes.rank_gf2 = rank_gf2(m.row_vectors());
  adopt(probes, probes.rank_gf2, "rank_gf2");

  // Counting bound on rows and columns: near-free.
  if (!budget.exhausted()) {
    probes.counting =
        std::max(counting_bound(distinct_nonzero_rows(m)),
                 counting_bound(distinct_nonzero_rows(m.transposed())));
    adopt(probes, probes.counting, "counting");
  }

  // GF(p) rank for a large odd prime: catches the GF(2)-degenerate cases
  // (e.g. parity structure that collapses mod 2 but not mod p). Past the
  // small-instance ceiling it runs only when the deadline clearly affords
  // the O(m·n·min(m,n)) elimination — the probe itself cannot be cancelled.
  const std::size_t cells = m.rows() * m.cols();
  const double modp_estimate =
      kModPSecondsPerOp * static_cast<double>(cells) *
      static_cast<double>(std::min(m.rows(), m.cols()));
  const bool modp_affordable =
      cells <= kModPCellLimit ||
      !budget.deadline.limited() ||
      modp_estimate < kModPBudgetShare * budget.deadline.remaining_seconds();
  if (!budget.exhausted() && modp_affordable) {
    probes.rank_modp = rank_mod_p(m.row_vectors(), m.cols(), kProbePrime);
    adopt(probes, probes.rank_modp, "rank_modp");
  }

  // Greedy fooling set on small instances.
  if (!budget.exhausted() && m.ones_count() <= kFoolingOnesLimit) {
    probes.fooling = greedy_fooling_set(m, 4, seed).size();
    adopt(probes, probes.fooling, "fooling");
  }

  probes.seconds = clock.seconds();
  return probes;
}

}  // namespace ebmf::local
