// Anytime local search over rectangle covers: greedy seeding, merge /
// relocation squeezes, tabu-guarded destroy-and-repair, stall-triggered
// perturbation and restarts. The working cover is a valid partition after
// every accepted move, so an exhausted or cancelled budget returns the best
// incumbent immediately.

#include "local/local_search.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "core/greedy_rect.h"
#include "obs/events.h"
#include "support/contracts.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace ebmf::local {

namespace {

/// Termination backstop when the caller set neither a budget nor a move
/// cap: the search must not spin forever on a plateau.
constexpr std::uint64_t kDefaultMoveCap = 2000;
/// Tabu tenure (moves) when the caller left it on auto.
constexpr std::uint64_t kDefaultTabuTenure = 16;
/// Row-count ceiling for relocation targets (thin rectangles empty fastest).
constexpr std::size_t kRelocationMaxRows = 3;
/// Relocation attempts per squeeze pass (bounds the O(|cover|) scans).
constexpr std::size_t kRelocationAttempts = 64;
/// Budget poll stride inside a move's inner loops (rows between checks).
constexpr std::size_t kBudgetStride = 64;

std::uint64_t rect_hash(const Rectangle& r) noexcept {
  return r.rows.hash() * 0x9e3779b97f4a7c15ull ^ r.cols.hash();
}

/// Consolidate rectangles with identical row sets (their column sets are
/// necessarily disjoint, so the union is again a rectangle of 1s) and then
/// rectangles with identical column sets. Each merge is depth −1.
std::uint64_t merge_pass(Partition& cover) {
  std::uint64_t merged = 0;
  for (int axis = 0; axis < 2; ++axis) {
    std::unordered_map<BitVec, std::size_t, BitVecHash> first;
    first.reserve(cover.size());
    std::vector<char> dead(cover.size(), 0);
    bool any_dead = false;
    for (std::size_t i = 0; i < cover.size(); ++i) {
      const BitVec& key = axis == 0 ? cover[i].rows : cover[i].cols;
      const auto [it, inserted] = first.try_emplace(key, i);
      if (inserted) continue;
      Rectangle& keep = cover[it->second];
      if (axis == 0)
        keep.cols |= cover[i].cols;
      else
        keep.rows |= cover[i].rows;
      dead[i] = 1;
      any_dead = true;
      ++merged;
    }
    if (any_dead) {
      Partition kept;
      kept.reserve(cover.size());
      for (std::size_t i = 0; i < cover.size(); ++i)
        if (!dead[i]) kept.push_back(std::move(cover[i]));
      cover = std::move(kept);
    }
  }
  return merged;
}

/// Try to delete cover[a] by re-covering its cells with other rectangles:
/// pick row-disjoint rectangles whose column sets tile cols_a exactly and
/// grow each by rows_a. Returns true when the tiling exists (the caller
/// erases `a`).
bool relocate_rect(Partition& cover, std::size_t a) {
  const BitVec& cols_a = cover[a].cols;
  const BitVec& rows_a = cover[a].rows;
  BitVec remaining = cols_a;
  std::vector<std::size_t> chosen;
  for (std::size_t t = 0; t < cover.size() && remaining.any(); ++t) {
    if (t == a) continue;
    if (!cover[t].rows.disjoint(rows_a)) continue;
    if (!cover[t].cols.subset_of(remaining)) continue;
    remaining -= cover[t].cols;
    chosen.push_back(t);
  }
  if (!remaining.none()) return false;
  for (std::size_t t : chosen) cover[t].rows |= rows_a;
  return true;
}

/// Sweep the thinnest rectangles (≤ kRelocationMaxRows rows) and empty as
/// many as the tiling allows. Each success is depth −1.
std::uint64_t relocation_pass(Partition& cover) {
  std::uint64_t relocated = 0;
  std::size_t attempts = 0;
  for (std::size_t a = 0; a < cover.size() && attempts < kRelocationAttempts;) {
    if (cover[a].rows.count() > kRelocationMaxRows) {
      ++a;
      continue;
    }
    ++attempts;
    if (relocate_rect(cover, a)) {
      cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(a));
      ++relocated;
    } else {
      ++a;
    }
  }
  return relocated;
}

/// Split a random rectangle with ≥ 2 rows into two half-row rectangles
/// (depth +1) — the stall perturbation.
bool split_perturbation(Partition& cover, std::size_t nrows, Rng& rng) {
  for (int tries = 0; tries < 8; ++tries) {
    const std::size_t i = rng.below(cover.size());
    const auto rows = cover[i].rows.ones();
    if (rows.size() < 2) continue;
    BitVec top(nrows);
    BitVec bottom(nrows);
    for (std::size_t k = 0; k < rows.size(); ++k)
      (k < rows.size() / 2 ? top : bottom).set(rows[k]);
    cover[i].rows = top;
    cover.push_back(Rectangle{std::move(bottom), cover[i].cols});
    return true;
  }
  return false;
}

}  // namespace

LocalSearchResult local_search_ebmf(const BinaryMatrix& m,
                                    const LocalSearchOptions& options,
                                    const IncumbentCallback& on_incumbent) {
  Stopwatch clock;
  LocalSearchResult out;
  LocalSearchStats& stats = out.stats;
  if (m.is_zero()) {
    out.seconds = clock.seconds();
    return out;
  }

  Rng rng(options.seed);
  std::uint64_t move_cap = options.max_moves;
  if (move_cap == 0 && !options.budget.limited()) move_cap = kDefaultMoveCap;
  const std::uint64_t tenure =
      options.tabu_tenure == 0 ? kDefaultTabuTenure : options.tabu_tenure;
  const std::uint64_t stall_limit = std::max<std::uint64_t>(options.stall_limit, 1);

  // Seed: multi-trial greedy extraction (both orientations), then squeeze.
  RowPackingOptions seeding;
  seeding.trials = std::max<std::size_t>(options.seed_trials, 1);
  seeding.seed = rng();
  seeding.stop_at = options.stop_at;
  seeding.budget = options.budget;
  Partition cover = greedy_rectangles(m, seeding).partition;
  stats.seed_depth = cover.size();
  stats.merges += merge_pass(cover);
  stats.relocations += relocation_pass(cover);

  Partition best;
  const auto consider_best = [&](const Partition& cand) {
    if (!best.empty() && cand.size() >= best.size()) return;
    EBMF_ENSURES(static_cast<bool>(validate_partition(m, cand)));
    best = cand;
    stats.incumbents.push_back(
        Incumbent{best.size(), stats.moves, clock.seconds()});
    obs::emit_event(obs::EventCode::LocalIncumbent, best.size(), stats.moves);
    if (on_incumbent) on_incumbent(best, clock.seconds());
  };
  consider_best(cover);

  std::unordered_map<std::uint64_t, std::uint64_t> tabu;  // hash → expiry move
  std::uint64_t stall = 0;

  while (true) {
    if (options.budget.exhausted()) break;
    if (options.stop_at != 0 && best.size() <= options.stop_at) {
      out.reached_stop = true;
      break;
    }
    if (move_cap != 0 && stats.moves >= move_cap) break;
    if (cover.size() <= 1 || best.size() <= 1) break;

    if (stall >= 3 * stall_limit) {
      // Hard stall: reseed from a fresh shuffled greedy cover (the best
      // incumbent is kept aside; the working cover diversifies).
      ++stats.restarts;
      stall = 0;
      tabu.clear();
      cover = greedy_rectangles_pass(m, rng.permutation(m.rows()));
      stats.merges += merge_pass(cover);
      stats.relocations += relocation_pass(cover);
      obs::emit_event(obs::EventCode::LocalPerturb, cover.size(), stall);
      consider_best(cover);
      continue;
    }
    if (stall != 0 && stall % stall_limit == 0 &&
        split_perturbation(cover, m.rows(), rng)) {
      ++stats.splits;
      obs::emit_event(obs::EventCode::LocalPerturb, cover.size(), stall);
    }

    // ---- one destroy-and-repair move --------------------------------
    ++stats.moves;
    const std::size_t kmax = std::max<std::size_t>(
        2, static_cast<std::size_t>(static_cast<double>(cover.size()) *
                                    options.destroy_fraction));
    std::size_t k = 1 + static_cast<std::size_t>(rng.below(kmax));
    k = std::min(k, cover.size() - 1);

    std::vector<std::size_t> chosen;
    std::vector<std::uint64_t> destroyed_hashes;
    std::vector<char> taken(cover.size(), 0);
    // Phase 1 honours the tabu list; phase 2 fills up regardless so the
    // move never starves when everything is tabu-active.
    for (int phase = 0; phase < 2 && chosen.size() < k; ++phase) {
      for (std::size_t attempt = 0;
           attempt < 4 * k + 16 && chosen.size() < k; ++attempt) {
        const std::size_t i = rng.below(cover.size());
        if (taken[i]) continue;
        if (phase == 0) {
          const auto it = tabu.find(rect_hash(cover[i]));
          if (it != tabu.end() && it->second > stats.moves) continue;
        }
        taken[i] = 1;
        chosen.push_back(i);
        destroyed_hashes.push_back(rect_hash(cover[i]));
      }
    }
    if (chosen.empty()) {
      ++stall;
      continue;
    }

    const Partition snapshot = cover;
    const std::size_t old_depth = cover.size();

    // Destroy: mark the chosen rectangles' cells uncovered, drop the rects.
    std::vector<std::size_t> dirty;
    std::vector<BitVec> uncov(m.rows());
    for (std::size_t i : chosen) {
      const Rectangle& r = cover[i];
      for (std::size_t row = r.rows.find_first(); row < m.rows();
           row = r.rows.find_next(row)) {
        if (uncov[row].empty()) {
          uncov[row] = BitVec(m.cols());
          dirty.push_back(row);
        }
        uncov[row] |= r.cols;
      }
    }
    std::sort(chosen.begin(), chosen.end(), std::greater<>());
    for (std::size_t i : chosen)
      cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(i));

    // Repair 1 — absorption: grow surviving rectangles over hole rows whose
    // uncovered cells host the rectangle's full column set.
    bool aborted = false;
    for (std::size_t d = 0; d < dirty.size(); ++d) {
      if (d % kBudgetStride == 0 && options.budget.exhausted()) {
        aborted = true;
        break;
      }
      const std::size_t row = dirty[d];
      for (Rectangle& rect : cover) {
        if (uncov[row].none()) break;
        if (rect.rows.test(row)) continue;
        if (!rect.cols.subset_of(uncov[row])) continue;
        rect.rows.set(row);
        uncov[row] -= rect.cols;
        ++stats.absorptions;
      }
    }

    // Repair 2 — greedy extraction over the residual (shuffled seeds).
    if (!aborted) {
      rng.shuffle(dirty);
      for (std::size_t d = 0; d < dirty.size(); ++d) {
        if (d % kBudgetStride == 0 && options.budget.exhausted()) {
          aborted = true;
          break;
        }
        const std::size_t seed_row = dirty[d];
        if (uncov[seed_row].none()) continue;
        BitVec cols = uncov[seed_row];
        BitVec rows(m.rows());
        for (std::size_t r : dirty)
          if (cols.subset_of(uncov[r])) rows.set(r);
        for (std::size_t r = rows.find_first(); r < m.rows();
             r = rows.find_next(r))
          uncov[r] -= cols;
        cover.push_back(Rectangle{std::move(rows), std::move(cols)});
      }
    }

    if (aborted) {
      // Mid-move cancel/deadline: restore the last complete cover and stop
      // — `best` is already a validated incumbent.
      cover = snapshot;
      break;
    }

    if (cover.size() <= old_depth) {
      ++stats.accepted;
      for (std::uint64_t h : destroyed_hashes)
        tabu[h] = stats.moves + tenure;
      stats.merges += merge_pass(cover);
      stats.relocations += relocation_pass(cover);
      if (cover.size() < best.size()) {
        consider_best(cover);
        stall = 0;
      } else {
        ++stall;
      }
    } else {
      cover = snapshot;
      ++stats.rejected;
      ++stall;
    }
  }

  out.partition = std::move(best);
  out.seconds = clock.seconds();
  return out;
}

}  // namespace ebmf::local
