#include "dlx/dlx.h"

#include "support/contracts.h"

namespace ebmf::dlx {

ExactCover::ExactCover(std::size_t num_items) : num_items_(num_items) {
  // Node 0 is the root; nodes 1..num_items are column headers, linked in a
  // circular row. Header up/down initially self-loops.
  nodes_.resize(num_items + 1);
  size_.assign(num_items + 1, 0);
  const auto n = static_cast<std::int32_t>(num_items);
  for (std::int32_t i = 0; i <= n; ++i) {
    nodes_[static_cast<std::size_t>(i)] =
        Node{i == 0 ? n : i - 1, i == n ? 0 : i + 1, i, i, i == 0 ? -1 : i, -1};
  }
}

std::size_t ExactCover::add_option(const std::vector<std::size_t>& items) {
  EBMF_EXPECTS(!items.empty());
  const std::size_t option = n_options_++;
  const std::size_t first = nodes_.size();
  for (std::size_t k = 0; k < items.size(); ++k) {
    EBMF_EXPECTS(items[k] < num_items_);
    const auto header = static_cast<std::int32_t>(items[k] + 1);
    const auto self = static_cast<std::int32_t>(nodes_.size());
    Node node{};
    node.column = header;
    node.option = static_cast<std::int32_t>(option);
    // Vertical splice: insert above the header (bottom of the column).
    node.up = nodes_[static_cast<std::size_t>(header)].up;
    node.down = header;
    nodes_[static_cast<std::size_t>(node.up)].down = self;
    nodes_[static_cast<std::size_t>(header)].up = self;
    ++size_[static_cast<std::size_t>(header)];
    // Horizontal circular links within the option.
    if (k == 0) {
      node.left = self;
      node.right = self;
    } else {
      const auto head = static_cast<std::int32_t>(first);
      node.left = nodes_[static_cast<std::size_t>(head)].left;
      node.right = head;
      nodes_[static_cast<std::size_t>(node.left)].right = self;
      nodes_[static_cast<std::size_t>(head)].left = self;
    }
    nodes_.push_back(node);
  }
  return option;
}

void ExactCover::cover(std::int32_t col) {
  auto& c = nodes_[static_cast<std::size_t>(col)];
  nodes_[static_cast<std::size_t>(c.right)].left = c.left;
  nodes_[static_cast<std::size_t>(c.left)].right = c.right;
  for (std::int32_t i = c.down; i != col;
       i = nodes_[static_cast<std::size_t>(i)].down) {
    for (std::int32_t j = nodes_[static_cast<std::size_t>(i)].right; j != i;
         j = nodes_[static_cast<std::size_t>(j)].right) {
      const Node& nj = nodes_[static_cast<std::size_t>(j)];
      nodes_[static_cast<std::size_t>(nj.down)].up = nj.up;
      nodes_[static_cast<std::size_t>(nj.up)].down = nj.down;
      --size_[static_cast<std::size_t>(nj.column)];
    }
  }
}

void ExactCover::uncover(std::int32_t col) {
  const auto& c = nodes_[static_cast<std::size_t>(col)];
  for (std::int32_t i = c.up; i != col;
       i = nodes_[static_cast<std::size_t>(i)].up) {
    for (std::int32_t j = nodes_[static_cast<std::size_t>(i)].left; j != i;
         j = nodes_[static_cast<std::size_t>(j)].left) {
      const Node& nj = nodes_[static_cast<std::size_t>(j)];
      ++size_[static_cast<std::size_t>(nj.column)];
      nodes_[static_cast<std::size_t>(nj.down)].up = j;
      nodes_[static_cast<std::size_t>(nj.up)].down = j;
    }
  }
  nodes_[static_cast<std::size_t>(c.right)].left = col;
  nodes_[static_cast<std::size_t>(c.left)].right = col;
}

bool ExactCover::search(
    std::vector<std::size_t>& selection, std::uint64_t max_nodes,
    std::uint64_t& nodes,
    const std::function<bool(const std::vector<std::size_t>&)>& emit) {
  if (max_nodes != 0 && nodes >= max_nodes) return true;  // abort
  ++nodes;
  const std::int32_t root_right = nodes_[0].right;
  if (root_right == 0) return emit(selection);  // all items covered
  // Choose the column with the fewest live options (Knuth's MRV rule).
  std::int32_t best = root_right;
  for (std::int32_t c = root_right; c != 0;
       c = nodes_[static_cast<std::size_t>(c)].right)
    if (size_[static_cast<std::size_t>(c)] < size_[static_cast<std::size_t>(best)])
      best = c;
  if (size_[static_cast<std::size_t>(best)] == 0) return false;

  cover(best);
  for (std::int32_t r = nodes_[static_cast<std::size_t>(best)].down; r != best;
       r = nodes_[static_cast<std::size_t>(r)].down) {
    selection.push_back(
        static_cast<std::size_t>(nodes_[static_cast<std::size_t>(r)].option));
    for (std::int32_t j = nodes_[static_cast<std::size_t>(r)].right; j != r;
         j = nodes_[static_cast<std::size_t>(j)].right)
      cover(nodes_[static_cast<std::size_t>(j)].column);
    const bool stop = search(selection, max_nodes, nodes, emit);
    for (std::int32_t j = nodes_[static_cast<std::size_t>(r)].left; j != r;
         j = nodes_[static_cast<std::size_t>(j)].left)
      uncover(nodes_[static_cast<std::size_t>(j)].column);
    selection.pop_back();
    if (stop) {
      uncover(best);
      return true;
    }
  }
  uncover(best);
  return false;
}

std::optional<std::vector<std::size_t>> ExactCover::solve(
    std::uint64_t max_nodes) {
  std::vector<std::size_t> selection;
  std::optional<std::vector<std::size_t>> found;
  std::uint64_t nodes = 0;
  search(selection, max_nodes, nodes,
         [&found](const std::vector<std::size_t>& sel) {
           found = sel;
           return true;  // stop at first solution
         });
  return found;
}

std::size_t ExactCover::enumerate(
    const std::function<void(const std::vector<std::size_t>&)>& on_solution,
    std::size_t limit) {
  std::vector<std::size_t> selection;
  std::size_t count = 0;
  std::uint64_t nodes = 0;
  search(selection, 0, nodes,
         [&](const std::vector<std::size_t>& sel) {
           on_solution(sel);
           ++count;
           return limit != 0 && count >= limit;
         });
  return count;
}

}  // namespace ebmf::dlx
