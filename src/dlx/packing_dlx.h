#pragma once
/// \file packing_dlx.h
/// \brief Row packing with an exact-cover decomposition step.
///
/// Algorithm 2 decomposes each row greedily, following basis order; the
/// paper notes (Observation 4 / §VI) that failures of row packing trace back
/// to this greediness and suggests Knuth's Algorithm X. Here the greedy
/// step is replaced by a DLX query: "is the row an exact disjoint union of
/// existing basis vectors?" — answered exactly. Only when no exact
/// decomposition exists do we fall back to the greedy subtraction and
/// residue/basis-update machinery of Algorithm 2.

#include "core/row_packing.h"

namespace ebmf::dlx {

/// One packing pass where full-row decompositions are found by exact cover.
/// `max_nodes` caps each DLX search (0 = unlimited; rows are short, so the
/// searches are tiny in practice).
Partition row_packing_dlx_pass(const BinaryMatrix& m,
                               const std::vector<std::size_t>& row_order,
                               bool basis_update = true,
                               std::uint64_t max_nodes = 100000);

/// Full heuristic, mirroring row_packing_ebmf but with the DLX packing step.
/// When options.budget.max_nodes is nonzero it overrides `max_nodes` (the
/// shared Budget is the preferred way to cap the per-row searches).
RowPackingResult row_packing_dlx(const BinaryMatrix& m,
                                 const RowPackingOptions& options = {},
                                 std::uint64_t max_nodes = 100000);

}  // namespace ebmf::dlx
