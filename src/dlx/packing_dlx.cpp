#include "dlx/packing_dlx.h"

#include <algorithm>
#include <numeric>

#include "dlx/dlx.h"
#include "support/rng.h"

namespace ebmf::dlx {

namespace {

/// Try to write `row` as an exact disjoint union of basis vectors
/// (p[j].cols ⊆ row). Returns selected rectangle indices, or empty if none.
std::vector<std::size_t> exact_decomposition(const BitVec& row,
                                             const Partition& p,
                                             std::uint64_t max_nodes) {
  const auto cols = row.ones();
  if (cols.empty()) return {};
  // Item k = k-th one of the row.
  std::vector<std::int32_t> item_of(row.size(), -1);
  for (std::size_t k = 0; k < cols.size(); ++k)
    item_of[cols[k]] = static_cast<std::int32_t>(k);

  ExactCover cover(cols.size());
  std::vector<std::size_t> option_rect;  // option index -> rectangle index
  for (std::size_t j = 0; j < p.size(); ++j) {
    if (!p[j].cols.subset_of(row)) continue;
    std::vector<std::size_t> items;
    for (std::size_t c : p[j].cols.ones())
      items.push_back(static_cast<std::size_t>(item_of[c]));
    cover.add_option(items);
    option_rect.push_back(j);
  }
  if (option_rect.empty()) return {};
  const auto solution = cover.solve(max_nodes);
  if (!solution) return {};
  std::vector<std::size_t> rects;
  rects.reserve(solution->size());
  for (std::size_t opt : *solution) rects.push_back(option_rect[opt]);
  return rects;
}

}  // namespace

Partition row_packing_dlx_pass(const BinaryMatrix& m,
                               const std::vector<std::size_t>& row_order,
                               bool basis_update, std::uint64_t max_nodes) {
  detail::check_row_order(m.rows(), row_order);
  Partition p;
  for (std::size_t row_index : row_order) {
    const BitVec& row = m.row(row_index);
    if (row.none()) continue;
    // Exact-cover decomposition first: if the row is a disjoint union of
    // basis vectors, no new rectangle is needed — guaranteed found.
    const auto selection = exact_decomposition(row, p, max_nodes);
    if (!selection.empty()) {
      for (std::size_t j : selection) p[j].rows.set(row_index);
      continue;
    }
    // Fall back to Algorithm 2's greedy subtraction + basis update.
    BitVec residue = row;
    for (auto& rect : p) {
      if (residue.none()) break;
      if (rect.cols.subset_of(residue)) {
        rect.rows.set(row_index);
        residue -= rect.cols;
      }
    }
    if (residue.none()) continue;
    BitVec new_rows(m.rows());
    new_rows.set(row_index);
    if (basis_update) {
      for (auto& rect : p) {
        if (residue.subset_of(rect.cols)) {
          new_rows |= rect.rows;
          rect.cols -= residue;
        }
      }
    }
    p.push_back(Rectangle{std::move(new_rows), std::move(residue)});
  }
  return p;
}

RowPackingResult row_packing_dlx(const BinaryMatrix& m,
                                 const RowPackingOptions& options,
                                 std::uint64_t max_nodes) {
  Stopwatch timer;
  RowPackingResult best;
  Rng rng(options.seed);
  if (options.budget.max_nodes != 0) max_nodes = options.budget.max_nodes;
  const BinaryMatrix mt =
      options.use_transpose ? m.transposed() : BinaryMatrix{};

  const auto make_order = [&](const BinaryMatrix& mat) {
    std::vector<std::size_t> order(mat.rows());
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (options.order == RowOrder::Shuffle) rng.shuffle(order);
    if (options.order == RowOrder::SortedByOnes)
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return mat.row(a).count() < mat.row(b).count();
                       });
    return order;
  };
  const auto consider = [&](Partition cand, bool was_transposed) {
    if (best.trials_run == 0 || cand.size() < best.partition.size()) {
      best.partition = std::move(cand);
      best.from_transpose = was_transposed;
    }
  };

  const std::size_t trials = std::max<std::size_t>(options.trials, 1);
  for (std::size_t t = 0; t < trials; ++t) {
    consider(row_packing_dlx_pass(m, make_order(m), options.basis_update,
                                  max_nodes),
             false);
    ++best.trials_run;
    if (options.stop_at != 0 && best.partition.size() <= options.stop_at)
      break;
    if (options.use_transpose) {
      consider(transposed(row_packing_dlx_pass(mt, make_order(mt),
                                               options.basis_update,
                                               max_nodes)),
               true);
      ++best.trials_run;
      if (options.stop_at != 0 && best.partition.size() <= options.stop_at)
        break;
    }
    if (options.budget.exhausted()) break;
    if (options.order != RowOrder::Shuffle) break;
  }
  best.seconds = timer.seconds();
  return best;
}

}  // namespace ebmf::dlx
