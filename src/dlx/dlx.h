#pragma once
/// \file dlx.h
/// \brief Knuth's Algorithm X with dancing links: exact cover.
///
/// The paper (§VI) suggests replacing row packing's greedy first-fit
/// decomposition with a real exact-cover search "such as Knuth's Algorithm X"
/// — deciding whether a row is a disjoint union of existing basis vectors is
/// itself NP-complete (it is EXACT COVER). This module provides the solver;
/// packing_dlx.h applies it to the packing step, and the ablation benchmark
/// measures what the upgrade buys.
///
/// The classic doubly-linked "dancing links" representation is used: columns
/// are constraint items, rows are options; cover/uncover splice nodes in and
/// out in O(1).

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace ebmf::dlx {

/// An exact cover instance: `num_items` items (columns) to cover exactly
/// once, and options (rows), each a set of item indices.
class ExactCover {
 public:
  /// Create a problem over `num_items` items.
  explicit ExactCover(std::size_t num_items);

  /// Add an option covering `items` (distinct indices < num_items). Returns
  /// the option's index (0-based, in insertion order). Empty options are
  /// rejected (they can never appear in a solution and break the links).
  std::size_t add_option(const std::vector<std::size_t>& items);

  /// Find one exact cover. Returns the selected option indices, or nullopt.
  /// `max_nodes` caps search effort (0 = unlimited).
  std::optional<std::vector<std::size_t>> solve(std::uint64_t max_nodes = 0);

  /// Enumerate all exact covers (up to `limit`), invoking `on_solution` for
  /// each. Returns the number found.
  std::size_t enumerate(
      const std::function<void(const std::vector<std::size_t>&)>& on_solution,
      std::size_t limit = 0);

  /// Number of options added.
  [[nodiscard]] std::size_t num_options() const noexcept { return n_options_; }

 private:
  struct Node {
    std::int32_t left, right, up, down;
    std::int32_t column;  ///< Header index for cell nodes; -1 for root.
    std::int32_t option;  ///< Owning option index; -1 for headers/root.
  };

  void cover(std::int32_t col_header);
  void uncover(std::int32_t col_header);
  bool search(std::vector<std::size_t>& selection, std::uint64_t max_nodes,
              std::uint64_t& nodes,
              const std::function<bool(const std::vector<std::size_t>&)>& emit);

  std::vector<Node> nodes_;      // [0] root, [1..num_items] column headers
  std::vector<std::int32_t> size_;  // per column: live option count
  std::size_t num_items_;
  std::size_t n_options_ = 0;
};

}  // namespace ebmf::dlx
