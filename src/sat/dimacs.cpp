#include "sat/dimacs.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ebmf::sat {

Cnf parse_dimacs(std::istream& in) {
  Cnf cnf;
  bool have_header = false;
  std::size_t declared_clauses = 0;
  std::string line;
  Clause current;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    if (line[0] == 'p') {
      std::string p, fmt;
      ls >> p >> fmt >> cnf.num_vars >> declared_clauses;
      if (fmt != "cnf") throw std::runtime_error("dimacs: expected 'p cnf'");
      have_header = true;
      continue;
    }
    if (!have_header)
      throw std::runtime_error("dimacs: clause before problem line");
    long v = 0;
    while (ls >> v) {
      if (v == 0) {
        cnf.clauses.push_back(current);
        current.clear();
      } else {
        const auto var = static_cast<Var>(std::labs(v) - 1);
        if (static_cast<std::size_t>(var) >= cnf.num_vars)
          throw std::runtime_error("dimacs: variable out of range");
        current.push_back(Lit(var, v < 0));
      }
    }
  }
  if (!current.empty())
    throw std::runtime_error("dimacs: unterminated clause");
  if (cnf.clauses.size() != declared_clauses)
    throw std::runtime_error("dimacs: clause count mismatch");
  return cnf;
}

Cnf parse_dimacs(const std::string& text) {
  std::istringstream in(text);
  return parse_dimacs(in);
}

void write_dimacs(std::ostream& out, const Cnf& cnf) {
  out << "p cnf " << cnf.num_vars << ' ' << cnf.clauses.size() << '\n';
  for (const auto& c : cnf.clauses) {
    for (Lit l : c) out << (l.sign() ? -(l.var() + 1) : (l.var() + 1)) << ' ';
    out << "0\n";
  }
}

}  // namespace ebmf::sat
