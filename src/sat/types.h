#pragma once
/// \file types.h
/// \brief Fundamental SAT types: variables, literals, and ternary values.
///
/// Follows the MiniSat conventions: a variable is a dense non-negative
/// integer, and a literal packs (variable, sign) into one integer so literal
/// indices can address arrays (watch lists, seen flags) directly.

#include <cstdint>
#include <vector>

#include "support/contracts.h"

namespace ebmf::sat {

/// A propositional variable, numbered densely from 0.
using Var = std::int32_t;

/// Sentinel for "no variable".
inline constexpr Var kNoVar = -1;

/// A literal: variable `v` or its negation.
///
/// Encoding: `idx() == 2*v + (negated ? 1 : 0)`; this makes `neg()` an XOR
/// and lets watch lists index by literal.
class Lit {
 public:
  /// An invalid literal (distinct from every real literal).
  constexpr Lit() = default;

  /// Literal for variable `v`, positive unless `negated`.
  constexpr Lit(Var v, bool negated) : x_(2 * v + (negated ? 1 : 0)) {
    EBMF_ASSERT(v >= 0);
  }

  /// The underlying variable.
  [[nodiscard]] constexpr Var var() const noexcept { return x_ >> 1; }

  /// True for a negated literal (¬v).
  [[nodiscard]] constexpr bool sign() const noexcept { return (x_ & 1) != 0; }

  /// The complement literal.
  [[nodiscard]] constexpr Lit neg() const noexcept { return from_index(x_ ^ 1); }

  /// Dense index in [0, 2·#vars): usable as an array subscript.
  [[nodiscard]] constexpr std::int32_t idx() const noexcept { return x_; }

  /// Rebuild from a dense index.
  static constexpr Lit from_index(std::int32_t i) noexcept {
    Lit l;
    l.x_ = i;
    return l;
  }

  /// True when this literal was default-constructed / unset.
  [[nodiscard]] constexpr bool is_undef() const noexcept { return x_ < 0; }

  friend constexpr bool operator==(Lit a, Lit b) noexcept { return a.x_ == b.x_; }
  friend constexpr bool operator!=(Lit a, Lit b) noexcept { return a.x_ != b.x_; }
  friend constexpr bool operator<(Lit a, Lit b) noexcept { return a.x_ < b.x_; }

 private:
  std::int32_t x_ = -2;
};

/// Positive literal of `v`.
constexpr Lit pos(Var v) { return Lit(v, false); }
/// Negative literal of `v`.
constexpr Lit neg(Var v) { return Lit(v, true); }

/// Ternary truth value.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

/// Truth value of a literal given its variable's value.
constexpr LBool lit_value(LBool var_value, bool sign) noexcept {
  if (var_value == LBool::Undef) return LBool::Undef;
  const bool v = (var_value == LBool::True) != sign;
  return v ? LBool::True : LBool::False;
}

/// Outcome of a solver run.
enum class SolveResult : std::uint8_t {
  Sat,     ///< A satisfying assignment was found (model available).
  Unsat,   ///< Proven unsatisfiable (under the given assumptions).
  Unknown  ///< Budget (conflicts/time) exhausted before an answer.
};

/// A disjunction of literals.
using Clause = std::vector<Lit>;

}  // namespace ebmf::sat
