#pragma once
/// \file cardinality.h
/// \brief CNF encodings of cardinality constraints over literal sets.
///
/// Used by the one-hot SMT encoding (exactly-one label per matrix cell) and
/// by the exact maximum-fooling-set search (at-least-k via at-most on the
/// complements). Two at-most-one encodings are provided because the best
/// choice depends on set size; at-most-k uses Sinz's sequential counter,
/// whose O(n·k) auxiliary variables are unit-propagation friendly
/// (arc-consistent).

#include <vector>

#include "sat/solver.h"
#include "sat/types.h"

namespace ebmf::sat {

/// How pairwise-exclusion constraints are encoded.
enum class AmoEncoding {
  Pairwise,   ///< O(n²) binary clauses, no auxiliary variables.
  Commander,  ///< Recursive commander-variable encoding, O(n) clauses/aux.
};

/// Add clauses enforcing "at most one of `lits` is true".
/// `Pairwise` is best below ~8 literals; `Commander` beyond.
void add_at_most_one(Solver& s, const std::vector<Lit>& lits,
                     AmoEncoding enc = AmoEncoding::Pairwise);

/// Add clauses enforcing "exactly one of `lits` is true".
/// Precondition: lits is non-empty.
void add_exactly_one(Solver& s, const std::vector<Lit>& lits,
                     AmoEncoding enc = AmoEncoding::Pairwise);

/// Add clauses enforcing "at most k of `lits` are true"
/// (Sinz 2005 sequential counter; k == 0 forces all false).
void add_at_most_k(Solver& s, const std::vector<Lit>& lits, std::size_t k);

/// Add clauses enforcing "at most k of `lits` are true" with the totalizer
/// encoding (Bailleux & Boutonnet 2003): a balanced tree of unary counters,
/// outputs truncated at k+1. O(n·k) clauses like the sequential counter but
/// often propagates better on balanced constraint sets; both are exposed so
/// the test suite can cross-validate them model-for-model.
void add_at_most_k_totalizer(Solver& s, const std::vector<Lit>& lits,
                             std::size_t k);

/// Add clauses enforcing "at least k of `lits` are true"
/// (at-most-(n-k) over the negations). Precondition: k <= lits.size().
void add_at_least_k(Solver& s, const std::vector<Lit>& lits, std::size_t k);

}  // namespace ebmf::sat
