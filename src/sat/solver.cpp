#include "sat/solver.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/events.h"
#include "obs/metrics.h"

namespace ebmf::sat {

namespace {

inline Lit as_lit(std::uint32_t w) noexcept { return std::bit_cast<Lit>(w); }
inline std::uint32_t as_word(Lit l) noexcept {
  return std::bit_cast<std::uint32_t>(l);
}

}  // namespace

Solver::Solver() = default;

std::vector<Clause> Solver::problem_clauses() const {
  std::vector<Clause> out;
  if (!ok_) {
    // A top-level contradiction was derived; later additions were dropped,
    // so the faithful snapshot is simply "unsatisfiable".
    out.push_back(Clause{});
    return out;
  }
  out.reserve(n_problem_ + trail_.size());
  // Level-0 units (facts discovered or added directly). Clauses stored
  // below were simplified against these, so the units make the snapshot
  // equisatisfiable with the original input.
  for (const Lit l : trail_)
    if (level_[static_cast<std::size_t>(l.var())] == 0) out.push_back({l});
  for (CRef c = arena_.walk_begin(); c < arena_.walk_end();
       c = arena_.walk_next(c)) {
    if (arena_.learnt(c) || arena_.deleted(c)) continue;
    Clause clause;
    const std::uint32_t n = arena_.size(c);
    clause.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) clause.push_back(arena_.lit(c, i));
    out.push_back(std::move(clause));
  }
  return out;
}

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  lit_val_.push_back(static_cast<std::uint8_t>(LBool::Undef));
  lit_val_.push_back(static_cast<std::uint8_t>(LBool::Undef));
  polarity_.push_back(0);
  reason_.push_back(kNoReason);
  level_.push_back(0);
  activity_.push_back(0.0);
  seen_.push_back(0);
  heap_pos_.push_back(-1);
  watches_.add_var();
  heap_insert(v);
  return v;
}

bool Solver::add_clause(Clause lits) {
  EBMF_EXPECTS(decision_level() == 0);
  if (!ok_) return false;
  // Top-level simplification: sort, merge duplicates, drop false literals,
  // detect tautologies and satisfied clauses.
  std::sort(lits.begin(), lits.end());
  Clause out;
  out.reserve(lits.size());
  Lit prev;
  for (Lit l : lits) {
    EBMF_EXPECTS(static_cast<std::size_t>(l.var()) < num_vars());
    if (value(l) == LBool::True || l == prev.neg()) return true;  // satisfied/taut
    if (value(l) == LBool::False || l == prev) continue;          // false/dup
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNoReason);
    if (propagate() != kCRefUndef) ok_ = false;
    return ok_;
  }
  const CRef c = arena_.alloc(out.data(),
                              static_cast<std::uint32_t>(out.size()),
                              /*learnt=*/false, /*lbd=*/0, /*activity=*/0.0f);
  ++n_problem_;
  attach_clause(c);
  return true;
}

void Solver::attach_clause(CRef c) {
  EBMF_ASSERT(arena_.size(c) >= 2);
  const Lit l0 = arena_.lit(c, 0);
  const Lit l1 = arena_.lit(c, 1);
  const CRef tag = arena_.size(c) == 2 ? (c | kBinaryBit) : c;
  watches_.push(static_cast<std::size_t>(l0.neg().idx()), Watcher{tag, l1});
  watches_.push(static_cast<std::size_t>(l1.neg().idx()), Watcher{tag, l0});
}

void Solver::enqueue(Lit l, CRef reason) {
  EBMF_ASSERT(value(l) == LBool::Undef);
  const auto v = static_cast<std::size_t>(l.var());
  assigns_[v] = l.sign() ? LBool::False : LBool::True;
  lit_val_[static_cast<std::size_t>(l.idx())] =
      static_cast<std::uint8_t>(LBool::True);
  lit_val_[static_cast<std::size_t>(l.neg().idx())] =
      static_cast<std::uint8_t>(LBool::False);
  reason_[v] = reason;
  level_[v] = decision_level();
  trail_.push_back(l);
}

void Solver::normalize_reason(CRef c, Lit implied) {
  if (arena_.lit(c, 0) == implied) return;
  EBMF_ASSERT(arena_.size(c) == 2 && arena_.lit(c, 1) == implied);
  std::uint32_t* lits = arena_.lits_raw(c);
  std::swap(lits[0], lits[1]);
}

CRef Solver::propagate() {
  CRef confl = kCRefUndef;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p is now true
    ++stats_.propagations;
    const auto pidx = static_cast<std::size_t>(p.idx());
    const Lit false_lit = p.neg();
    const WatchLists::Bucket& bucket = watches_.bucket(pidx);
    // The cursor is re-derived from the bucket after every push: pushing a
    // new watch may relocate the shared pool. The bucket of `p` itself
    // never grows mid-scan (the replacement watch is never ~p).
    Watcher* ws = watches_.pool() + bucket.off;
    const std::uint32_t n = bucket.size;
    std::uint32_t keep = 0;
    std::uint32_t i = 0;
    for (; i < n; ++i) {
      const Watcher w = ws[i];
      // Fast path: blocker already satisfied.
      if (value(w.blocker) == LBool::True) {
        ws[keep++] = w;
        continue;
      }
      // Binary clauses resolve from the watcher alone: the blocker IS the
      // rest of the clause, so no arena access is needed.
      if ((w.cref & kBinaryBit) != 0) {
        const CRef cref = w.cref & ~kBinaryBit;
        ws[keep++] = w;
        if (value(w.blocker) == LBool::False) {
          confl = cref;
          qhead_ = trail_.size();
          for (++i; i < n; ++i) ws[keep++] = ws[i];
          break;
        }
        enqueue(w.blocker, cref);
        continue;
      }
      std::uint32_t* lits = arena_.lits_raw(w.cref);
      // Normalize: the false literal (~p) goes to position 1.
      if (as_lit(lits[0]) == false_lit) std::swap(lits[0], lits[1]);
      EBMF_ASSERT(as_lit(lits[1]) == false_lit);
      const Lit first = as_lit(lits[0]);
      // First literal satisfied?
      if (value(first) == LBool::True) {
        ws[keep++] = Watcher{w.cref, first};
        continue;
      }
      // Look for a non-false replacement watch, resuming from the saved
      // search position (circular scan: long learnt clauses keep a false
      // prefix for many levels, so restarting at 2 rescans it every time).
      const std::uint32_t size = arena_.size(w.cref);
      const std::uint32_t start = arena_.search_pos(w.cref);
      bool moved = false;
      std::uint32_t k = start;
      for (std::uint32_t scanned = 2; scanned < size; ++scanned, ++k) {
        if (k == size) k = 2;
        const Lit ck = as_lit(lits[k]);
        if (value(ck) != LBool::False) {
          lits[1] = lits[k];
          lits[k] = as_word(false_lit);
          arena_.set_search_pos(w.cref, k);
          watches_.push(static_cast<std::size_t>(ck.neg().idx()),
                        Watcher{w.cref, first});
          ws = watches_.pool() + bucket.off;  // pool may have relocated
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting.
      if (value(first) == LBool::False) {
        confl = w.cref;
        qhead_ = trail_.size();
        // Copy back the remaining watchers before aborting.
        for (; i < n; ++i) ws[keep++] = ws[i];
        break;
      }
      ws[keep++] = w;
      enqueue(first, w.cref);
    }
    watches_.shrink(pidx, keep);
    if (confl != kCRefUndef) break;
  }
  return confl;
}

void Solver::analyze(CRef confl, Clause& out_learnt, int& out_btlevel,
                     std::uint32_t& out_lbd) {
  out_learnt.clear();
  out_learnt.push_back(Lit{});  // slot for the asserting literal
  int path_count = 0;
  Lit p;  // undef
  std::size_t index = trail_.size();

  do {
    EBMF_ASSERT(confl != kCRefUndef);
    if (arena_.learnt(confl)) clause_bump(confl);
    if (!p.is_undef()) normalize_reason(confl, p);
    const std::uint32_t start = p.is_undef() ? 0 : 1;
    const std::uint32_t size = arena_.size(confl);
    for (std::uint32_t k = start; k < size; ++k) {
      const Lit q = arena_.lit(confl, k);
      const auto v = static_cast<std::size_t>(q.var());
      if (seen_[v] == 0 && level_[v] > 0) {
        var_bump(q.var());
        seen_[v] = 1;
        if (level_[v] >= decision_level())
          ++path_count;
        else
          out_learnt.push_back(q);
      }
    }
    // Walk back to the next marked trail literal.
    while (seen_[static_cast<std::size_t>(trail_[index - 1].var())] == 0)
      --index;
    --index;
    p = trail_[index];
    confl = reason_[static_cast<std::size_t>(p.var())];
    seen_[static_cast<std::size_t>(p.var())] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = p.neg();

  // Recursive clause minimization (MiniSat's "deep" mode): drop literals
  // implied by the rest of the learned clause.
  std::uint32_t ab_levels = 0;
  for (std::size_t k = 1; k < out_learnt.size(); ++k)
    ab_levels |= std::uint32_t{1}
                 << (level_[static_cast<std::size_t>(out_learnt[k].var())] & 31);
  to_clear_.assign(out_learnt.begin(), out_learnt.end());
  std::size_t kept = 1;
  for (std::size_t k = 1; k < out_learnt.size(); ++k) {
    const auto v = static_cast<std::size_t>(out_learnt[k].var());
    if (reason_[v] == kNoReason || !lit_redundant(out_learnt[k], ab_levels))
      out_learnt[kept++] = out_learnt[k];
    else
      ++stats_.minimized_literals;
  }
  out_learnt.resize(kept);
  for (Lit l : to_clear_) seen_[static_cast<std::size_t>(l.var())] = 0;
  to_clear_.clear();

  // Backtrack level: second-highest level in the clause; move that literal
  // to position 1 so it is watched.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t k = 2; k < out_learnt.size(); ++k)
      if (level_[static_cast<std::size_t>(out_learnt[k].var())] >
          level_[static_cast<std::size_t>(out_learnt[max_i].var())])
        max_i = k;
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[static_cast<std::size_t>(out_learnt[1].var())];
  }

  // LBD = number of distinct decision levels in the clause.
  std::vector<int> levels;
  levels.reserve(out_learnt.size());
  for (Lit l : out_learnt)
    levels.push_back(level_[static_cast<std::size_t>(l.var())]);
  std::sort(levels.begin(), levels.end());
  out_lbd = static_cast<std::uint32_t>(
      std::unique(levels.begin(), levels.end()) - levels.begin());

  stats_.learned_literals += out_learnt.size();
}

bool Solver::lit_redundant(Lit l, std::uint32_t ab_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const std::size_t top = to_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const auto qv = static_cast<std::size_t>(q.var());
    EBMF_ASSERT(reason_[qv] != kNoReason);
    const CRef c = reason_[qv];
    normalize_reason(c, q.neg());  // q is false; the implied literal is ~q
    const std::uint32_t size = arena_.size(c);
    for (std::uint32_t k = 1; k < size; ++k) {
      const Lit p = arena_.lit(c, k);
      const auto pv = static_cast<std::size_t>(p.var());
      if (seen_[pv] != 0 || level_[pv] == 0) continue;
      if (reason_[pv] != kNoReason &&
          ((std::uint32_t{1} << (level_[pv] & 31)) & ab_levels) != 0) {
        seen_[pv] = 1;
        analyze_stack_.push_back(p);
        to_clear_.push_back(p);
      } else {
        // Not removable: undo the speculative marks from this call.
        for (std::size_t j = top; j < to_clear_.size(); ++j)
          seen_[static_cast<std::size_t>(to_clear_[j].var())] = 0;
        to_clear_.resize(top);
        return false;
      }
    }
  }
  return true;
}

void Solver::analyze_final(Lit p, std::vector<Lit>& out_core) {
  out_core.clear();
  out_core.push_back(p);
  if (decision_level() == 0) return;
  seen_[static_cast<std::size_t>(p.var())] = 1;
  for (std::size_t i = trail_.size(); i-- > static_cast<std::size_t>(trail_lim_[0]);) {
    const auto v = static_cast<std::size_t>(trail_[i].var());
    if (seen_[v] == 0) continue;
    if (reason_[v] == kNoReason) {
      // A decision inside the assumption prefix == an assumption literal.
      out_core.push_back(trail_[i]);
    } else {
      const CRef c = reason_[v];
      normalize_reason(c, trail_[i]);
      const std::uint32_t size = arena_.size(c);
      for (std::uint32_t k = 1; k < size; ++k) {
        const Lit q = arena_.lit(c, k);
        if (level_[static_cast<std::size_t>(q.var())] > 0)
          seen_[static_cast<std::size_t>(q.var())] = 1;
      }
    }
    seen_[v] = 0;
  }
  seen_[static_cast<std::size_t>(p.var())] = 0;
}

void Solver::cancel_until(int level) {
  if (decision_level() <= level) return;
  const auto bound = static_cast<std::size_t>(trail_lim_[static_cast<std::size_t>(level)]);
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const Lit l = trail_[i];
    const auto v = static_cast<std::size_t>(l.var());
    polarity_[v] = assigns_[v] == LBool::True ? 1 : 0;
    assigns_[v] = LBool::Undef;
    lit_val_[static_cast<std::size_t>(l.idx())] =
        static_cast<std::uint8_t>(LBool::Undef);
    lit_val_[static_cast<std::size_t>(l.neg().idx())] =
        static_cast<std::uint8_t>(LBool::Undef);
    reason_[v] = kNoReason;
    if (heap_pos_[v] < 0) heap_insert(static_cast<Var>(v));
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<std::size_t>(level));
  qhead_ = trail_.size();
}

Lit Solver::pick_branch_lit() {
  while (true) {
    if (heap_.empty()) return Lit{};
    const Var v = heap_pop_max();
    if (value(v) == LBool::Undef)
      return Lit(v, polarity_[static_cast<std::size_t>(v)] == 0);
  }
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (restart pacing).
  // Find the finite subsequence containing index i and the position in it.
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i %= size;
  }
  return std::uint64_t{1} << seq;
}

SolveResult Solver::search(std::int64_t conflict_budget,
                           const Budget& budget) {
  std::int64_t conflicts_here = 0;
  while (true) {
    const CRef confl = propagate();
    // Propagation-count budget checkpoint: conflicts can be hundreds of
    // thousands of propagations apart on propagate-heavy instances, so a
    // per-conflict check alone leaves cancellation (race losers, client
    // disconnects) waiting far too long.
    if (stats_.propagations >= next_budget_check_) {
      next_budget_check_ = stats_.propagations + kBudgetCheckProps;
      if (budget.exhausted()) return SolveResult::Unknown;
    }
    if (confl != kCRefUndef) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (decision_level() == 0) {
        ok_ = false;
        return SolveResult::Unsat;
      }
      Clause learnt;
      int bt_level = 0;
      std::uint32_t lbd = 0;
      analyze(confl, learnt, bt_level, lbd);
      cancel_until(bt_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        const CRef c = arena_.alloc(learnt.data(),
                                    static_cast<std::uint32_t>(learnt.size()),
                                    /*learnt=*/true, lbd, clause_inc_);
        learnts_.push_back(c);
        attach_clause(c);
        enqueue(learnt[0], c);
      }
      ++stats_.learned_clauses;
      var_decay_all();
      clause_inc_ /= kClauseDecay;
      if ((stats_.conflicts & 0xff) == 0 && budget.exhausted())
        return SolveResult::Unknown;
    } else {
      if (conflict_budget >= 0 && conflicts_here >= conflict_budget) {
        cancel_until(0);
        return SolveResult::Unknown;
      }
      if (static_cast<double>(learnts_.size()) >= max_learnts_ +
                                                      static_cast<double>(
                                                          trail_.size()))
        reduce_db();

      Lit next;
      // Assumption prefix: honour assumptions as pseudo-decisions.
      while (static_cast<std::size_t>(decision_level()) < assumptions_.size()) {
        const Lit a = assumptions_[static_cast<std::size_t>(decision_level())];
        if (value(a) == LBool::True) {
          trail_lim_.push_back(static_cast<int>(trail_.size()));  // dummy level
        } else if (value(a) == LBool::False) {
          analyze_final(a.neg(), conflict_core_);
          // Report the assumptions themselves (a is the failed one).
          conflict_core_[0] = a;
          return SolveResult::Unsat;
        } else {
          next = a;
          break;
        }
      }
      if (next.is_undef()) {
        next = pick_branch_lit();
        if (next.is_undef()) {
          // All variables assigned: model found.
          model_.assign(assigns_.begin(), assigns_.end());
          has_model_ = true;
          return SolveResult::Sat;
        }
        ++stats_.decisions;
      }
      trail_lim_.push_back(static_cast<int>(trail_.size()));
      enqueue(next, kNoReason);
    }
  }
}

SolveResult Solver::solve(const std::vector<Lit>& assumptions,
                          const Budget& budget) {
  has_model_ = false;
  conflict_core_.clear();
  if (!ok_) return SolveResult::Unsat;
  assumptions_ = assumptions;
  max_learnts_ = std::max(2000.0, static_cast<double>(n_problem_) / 3.0);
  next_budget_check_ = stats_.propagations;
  // Propagation accounting for the process metrics registry: remember the
  // cumulative counters now and flush the deltas once on exit, so the
  // propagate()/search() hot loops never touch a shared atomic.
  const std::uint64_t props_before = stats_.propagations;
  const std::uint64_t conflicts_before = stats_.conflicts;
  const std::uint64_t decisions_before = stats_.decisions;

  SolveResult result = SolveResult::Unknown;
  std::int64_t conflicts_used = 0;
  for (std::uint64_t restart = 0;; ++restart) {
    const auto rest_budget =
        static_cast<std::int64_t>(luby(restart) * 128);
    std::int64_t this_budget = rest_budget;
    if (budget.max_conflicts >= 0)
      this_budget = std::min(this_budget,
                             budget.max_conflicts - conflicts_used);
    if (this_budget <= 0) {
      result = SolveResult::Unknown;
      break;
    }
    const auto before = stats_.conflicts;
    result = search(this_budget, budget);
    conflicts_used += static_cast<std::int64_t>(stats_.conflicts - before);
    if (result != SolveResult::Unknown) break;
    ++stats_.restarts;
    obs::emit_event(obs::EventCode::SatRestart, restart, stats_.conflicts);
    cancel_until(0);
    if (budget.exhausted() ||
        (budget.max_conflicts >= 0 && conflicts_used >= budget.max_conflicts))
      break;
  }
  cancel_until(0);
  assumptions_.clear();
  stats_.arena_bytes = arena_.bytes();
  {
    static obs::Counter* const props =
        obs::default_registry().counter("sat.solver.propagations");
    static obs::Counter* const conflicts =
        obs::default_registry().counter("sat.solver.conflicts");
    static obs::Counter* const decisions =
        obs::default_registry().counter("sat.solver.decisions");
    static obs::Counter* const solves =
        obs::default_registry().counter("sat.solver.solves");
    props->add(stats_.propagations - props_before);
    conflicts->add(stats_.conflicts - conflicts_before);
    decisions->add(stats_.decisions - decisions_before);
    solves->add();
    obs::emit_event(obs::EventCode::SatConflicts,
                    stats_.conflicts - conflicts_before,
                    stats_.propagations - props_before);
  }
  return result;
}

void Solver::reduce_db() {
  // Order learned clauses: glue (LBD<=2) and binary clauses are precious;
  // otherwise prefer low LBD, then high activity. Delete the worse half,
  // except clauses currently acting as reasons ("locked").
  std::sort(learnts_.begin(), learnts_.end(), [this](CRef a, CRef b) {
    if (arena_.lbd(a) != arena_.lbd(b)) return arena_.lbd(a) < arena_.lbd(b);
    return arena_.activity(a) > arena_.activity(b);
  });
  const std::size_t keep_target = learnts_.size() / 2;
  const std::uint64_t deleted_before = stats_.deleted_clauses;
  std::vector<CRef> kept;
  kept.reserve(learnts_.size());
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    const CRef c = learnts_[i];
    const Lit first = arena_.lit(c, 0);
    const bool locked =
        value(first) == LBool::True &&
        reason_[static_cast<std::size_t>(first.var())] == c;
    if (i < keep_target || arena_.lbd(c) <= 2 || arena_.size(c) == 2 ||
        locked) {
      kept.push_back(c);
    } else {
      arena_.mark_deleted(c);
      ++stats_.deleted_clauses;
    }
  }
  learnts_ = std::move(kept);
  max_learnts_ *= 1.15;
  obs::emit_event(obs::EventCode::SatReduceDb,
                  stats_.deleted_clauses - deleted_before, learnts_.size());
  garbage_collect();
}

/// Compact the arena and rewrite every live clause reference: the learnt
/// list, the per-variable reasons (always live — locked clauses are never
/// deleted), and the watch lists (rebuilt from scratch, which also reclaims
/// their lazily-dropped entries).
void Solver::garbage_collect() {
  const std::uint64_t bytes_before = arena_.bytes();
  arena_.compact();
  for (CRef& c : learnts_) c = arena_.forward(c);
  for (std::size_t v = 0; v < reason_.size(); ++v) {
    if (reason_[v] != kNoReason && assigns_[v] != LBool::Undef)
      reason_[v] = arena_.forward(reason_[v]);
  }
  arena_.drop_forwarding();
  ++stats_.arena_gcs;
  obs::emit_event(obs::EventCode::SatArenaGc, bytes_before, arena_.bytes());
  rebuild_watches();
}

void Solver::rebuild_watches() {
  watches_.clear_all();
  for (CRef c = arena_.walk_begin(); c < arena_.walk_end();
       c = arena_.walk_next(c)) {
    if (arena_.deleted(c) || arena_.size(c) < 2) continue;
    attach_clause(c);
  }
}

// ---- VSIDS -----------------------------------------------------------

void Solver::var_bump(Var v) {
  auto& a = activity_[static_cast<std::size_t>(v)];
  a += var_inc_;
  if (a > 1e100) {
    for (auto& x : activity_) x *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[static_cast<std::size_t>(v)] >= 0)
    heap_sift_up(static_cast<std::size_t>(heap_pos_[static_cast<std::size_t>(v)]));
}

void Solver::clause_bump(CRef c) {
  const float bumped = arena_.activity(c) + clause_inc_;
  arena_.set_activity(c, bumped);
  if (bumped > 1e20f) {
    for (CRef l : learnts_) arena_.set_activity(l, arena_.activity(l) * 1e-20f);
    clause_inc_ *= 1e-20f;
  }
}

void Solver::heap_insert(Var v) {
  EBMF_ASSERT(heap_pos_[static_cast<std::size_t>(v)] < 0);
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

Var Solver::heap_pop_max() {
  EBMF_ASSERT(!heap_.empty());
  const Var top = heap_[0];
  heap_pos_[static_cast<std::size_t>(top)] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[static_cast<std::size_t>(heap_[0])] = 0;
    heap_sift_down(0);
  }
  return top;
}

void Solver::heap_sift_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_less(heap_[parent], v)) break;
    heap_[i] = heap_[parent];
    heap_pos_[static_cast<std::size_t>(heap_[i])] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const Var v = heap_[i];
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() && heap_less(heap_[child], heap_[child + 1]))
      ++child;
    if (!heap_less(v, heap_[child])) break;
    heap_[i] = heap_[child];
    heap_pos_[static_cast<std::size_t>(heap_[i])] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

}  // namespace ebmf::sat
