#pragma once
/// \file solver.h
/// \brief A conflict-driven clause-learning (CDCL) SAT solver.
///
/// This is the library's replacement for the paper's Z3 backend: the SMT
/// layer (src/smt) lowers the paper's uninterpreted-function/bit-vector
/// formulation to CNF and drives this solver. The design is the classic
/// MiniSat architecture:
///
///  * two-watched-literal unit propagation with blocker literals,
///  * first-UIP conflict analysis with recursive clause minimization,
///  * exponential VSIDS variable activities with a heap decision order,
///  * phase saving,
///  * Luby-sequence restarts,
///  * LBD/activity-based learned-clause reduction,
///  * incremental use: add clauses/variables between solve() calls and pass
///    assumption literals (used by Algorithm 1's decreasing-b narrowing and
///    by the maximum fooling set search).
///
/// Solving is budgetable (conflict count and/or wall-clock deadline); an
/// exhausted budget yields SolveResult::Unknown, which the SAP driver treats
/// as "keep the best heuristic solution" — the paper's anytime behaviour.

#include <cstdint>
#include <vector>

#include "sat/types.h"
#include "support/budget.h"
#include "support/stopwatch.h"

namespace ebmf::sat {

/// Resource budget for one solve() call (the library-wide shared type;
/// max_conflicts and deadline apply here, and the cancellation flag is
/// honoured at the same checkpoints as the deadline).
using Budget = ebmf::Budget;

/// Counters describing the work a solve() performed (cumulative).
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t minimized_literals = 0;  ///< Removed by clause minimization.
  std::uint64_t deleted_clauses = 0;
};

/// CDCL SAT solver. See file comment for architecture.
class Solver {
 public:
  Solver();

  /// Create a fresh variable and return it. Variables are dense from 0.
  Var new_var();

  /// Number of variables created.
  [[nodiscard]] std::size_t num_vars() const noexcept { return assigns_.size(); }

  /// Number of live problem (non-learned) clauses.
  [[nodiscard]] std::size_t num_clauses() const noexcept { return n_problem_; }

  /// Add a clause (disjunction). Returns false if the solver is already in
  /// an unsatisfiable top-level state after the addition (e.g. empty clause
  /// or contradicting units); subsequent solve() calls will return Unsat.
  /// Duplicate literals are merged and tautologies are dropped.
  bool add_clause(Clause lits);

  /// Convenience overloads.
  bool add_clause(Lit a) { return add_clause(Clause{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(Clause{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) { return add_clause(Clause{a, b, c}); }

  /// Decide satisfiability under `assumptions` within `budget`.
  SolveResult solve(const std::vector<Lit>& assumptions = {},
                    const Budget& budget = {});

  /// Value of `l` in the model of the last Sat answer.
  /// Precondition: previous solve() returned Sat.
  [[nodiscard]] bool model_true(Lit l) const {
    EBMF_EXPECTS(has_model_);
    EBMF_EXPECTS(static_cast<std::size_t>(l.var()) < model_.size());
    return lit_value(model_[static_cast<std::size_t>(l.var())], l.sign()) ==
           LBool::True;
  }

  /// True when a model from a previous Sat answer is available.
  [[nodiscard]] bool has_model() const noexcept { return has_model_; }

  /// Assumptions that were proven jointly unsatisfiable by the last Unsat
  /// answer (a subset of the passed assumptions; the "final conflict").
  [[nodiscard]] const std::vector<Lit>& unsat_core() const noexcept {
    return conflict_core_;
  }

  /// Cumulative statistics.
  [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }

  /// True once the clause set has been proven unsatisfiable without
  /// assumptions; all future solves are Unsat.
  [[nodiscard]] bool in_conflict() const noexcept { return !ok_; }

  /// Snapshot the current problem clauses (plus level-0 units) as a CNF,
  /// e.g. for DIMACS export to external solvers. Learned clauses are
  /// excluded (they are implied).
  [[nodiscard]] std::vector<Clause> problem_clauses() const;

 private:
  // ---- clause storage ------------------------------------------------
  struct ClauseData {
    std::vector<Lit> lits;
    double activity = 0.0;
    std::uint32_t lbd = 0;
    bool learnt = false;
    bool deleted = false;
  };
  using CRef = std::int32_t;
  static constexpr CRef kNoReason = -1;
  static constexpr CRef kAssumptionReason = -2;

  struct Watcher {
    CRef cref;
    Lit blocker;
  };

  // ---- core CDCL -----------------------------------------------------
  [[nodiscard]] LBool value(Lit l) const noexcept {
    return lit_value(assigns_[static_cast<std::size_t>(l.var())], l.sign());
  }
  [[nodiscard]] LBool value(Var v) const noexcept {
    return assigns_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int decision_level() const noexcept {
    return static_cast<int>(trail_lim_.size());
  }

  void attach_clause(CRef c);
  void enqueue(Lit l, CRef reason);
  CRef propagate();
  void analyze(CRef confl, Clause& out_learnt, int& out_btlevel,
               std::uint32_t& out_lbd);
  bool lit_redundant(Lit l, std::uint32_t ab_levels);
  void analyze_final(Lit p, std::vector<Lit>& out_core);
  void cancel_until(int level);
  Lit pick_branch_lit();
  SolveResult search(std::int64_t conflict_budget, const Budget& budget);
  void reduce_db();
  void rebuild_watches();

  // VSIDS / heap
  void var_bump(Var v);
  void var_decay_all() { var_inc_ /= kVarDecay; }
  void clause_bump(ClauseData& c);
  void heap_insert(Var v);
  Var heap_pop_max();
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  [[nodiscard]] bool heap_less(Var a, Var b) const noexcept {
    return activity_[static_cast<std::size_t>(a)] <
           activity_[static_cast<std::size_t>(b)];
  }

  static std::uint64_t luby(std::uint64_t i);

  // ---- state ----------------------------------------------------------
  std::vector<ClauseData> clauses_;      // all clauses (problem + learned)
  std::vector<CRef> learnts_;            // indices of live learned clauses
  std::size_t n_problem_ = 0;            // live problem clause count
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::idx()

  std::vector<LBool> assigns_;  // per var
  std::vector<char> polarity_;  // saved phase per var (1 = last was true)
  std::vector<CRef> reason_;    // per var
  std::vector<int> level_;      // per var
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;  // per var
  double var_inc_ = 1.0;
  static constexpr double kVarDecay = 0.95;
  double clause_inc_ = 1.0;
  static constexpr double kClauseDecay = 0.999;
  std::vector<std::int32_t> heap_pos_;  // var -> heap index or -1
  std::vector<Var> heap_;               // max-heap by activity

  std::vector<char> seen_;          // per var scratch for analyze()
  std::vector<Lit> to_clear_;       // seen_ marks to undo after analyze()
  std::vector<Lit> analyze_stack_;  // DFS stack for lit_redundant()

  std::vector<Lit> assumptions_;
  std::vector<Lit> conflict_core_;

  double max_learnts_ = 0;  // reduceDB threshold (grows geometrically)

  bool ok_ = true;
  bool has_model_ = false;
  std::vector<LBool> model_;

  SolverStats stats_;
};

}  // namespace ebmf::sat
