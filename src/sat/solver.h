#pragma once
/// \file solver.h
/// \brief A conflict-driven clause-learning (CDCL) SAT solver.
///
/// This is the library's replacement for the paper's Z3 backend: the SMT
/// layer (src/smt) lowers the paper's uninterpreted-function/bit-vector
/// formulation to CNF and drives this solver. The design is the classic
/// MiniSat architecture:
///
///  * two-watched-literal unit propagation with blocker literals,
///  * first-UIP conflict analysis with recursive clause minimization,
///  * exponential VSIDS variable activities with a heap decision order,
///  * phase saving,
///  * Luby-sequence restarts,
///  * LBD/activity-based learned-clause reduction,
///  * incremental use: add clauses/variables between solve() calls and pass
///    assumption literals (used by Algorithm 1's decreasing-b narrowing and
///    by the maximum fooling set search).
///
/// Clause storage is a single contiguous arena (sat/arena.h): literals live
/// inline behind a packed header, clause references are arena offsets, and
/// watch lists are flat per-literal buckets — propagate() walks cache-dense
/// memory instead of chasing a heap vector per clause. reduce_db() compacts
/// the arena and rewrites all live references (watchers, reasons, learnt
/// list), so the arena never accumulates dead clauses.
///
/// Solving is budgetable (conflict count and/or wall-clock deadline, plus a
/// shared cancellation flag checked both per-conflict and per-propagation
/// block, so cancellation lands promptly even on propagation-heavy
/// instances); an exhausted budget yields SolveResult::Unknown, which the
/// SAP driver treats as "keep the best heuristic solution" — the paper's
/// anytime behaviour.

#include <cstdint>
#include <vector>

#include "sat/arena.h"
#include "sat/types.h"
#include "support/budget.h"
#include "support/stopwatch.h"

namespace ebmf::sat {

/// Resource budget for one solve() call (the library-wide shared type;
/// max_conflicts and deadline apply here, and the cancellation flag is
/// honoured at the same checkpoints as the deadline).
using Budget = ebmf::Budget;

/// Counters describing the work a solve() performed (cumulative).
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t minimized_literals = 0;  ///< Removed by clause minimization.
  std::uint64_t deleted_clauses = 0;
  std::uint64_t arena_gcs = 0;    ///< Compacting collections run.
  std::uint64_t arena_bytes = 0;  ///< Arena footprint after the last solve.
};

/// CDCL SAT solver. See file comment for architecture.
///
/// Copyable: all state lives in flat value containers, so a copy is an
/// independent solver with the same clauses, learnt set, and activities.
/// The SAP bound race clones a solved-up formula per probe this way.
class Solver {
 public:
  Solver();

  /// Create a fresh variable and return it. Variables are dense from 0.
  Var new_var();

  /// Number of variables created.
  [[nodiscard]] std::size_t num_vars() const noexcept { return assigns_.size(); }

  /// Number of live problem (non-learned) clauses.
  [[nodiscard]] std::size_t num_clauses() const noexcept { return n_problem_; }

  /// Add a clause (disjunction). Returns false if the solver is already in
  /// an unsatisfiable top-level state after the addition (e.g. empty clause
  /// or contradicting units); subsequent solve() calls will return Unsat.
  /// Duplicate literals are merged and tautologies are dropped.
  bool add_clause(Clause lits);

  /// Convenience overloads.
  bool add_clause(Lit a) { return add_clause(Clause{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(Clause{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) { return add_clause(Clause{a, b, c}); }

  /// Decide satisfiability under `assumptions` within `budget`.
  SolveResult solve(const std::vector<Lit>& assumptions = {},
                    const Budget& budget = {});

  /// Value of `l` in the model of the last Sat answer.
  /// Precondition: previous solve() returned Sat.
  [[nodiscard]] bool model_true(Lit l) const {
    EBMF_EXPECTS(has_model_);
    EBMF_EXPECTS(static_cast<std::size_t>(l.var()) < model_.size());
    return lit_value(model_[static_cast<std::size_t>(l.var())], l.sign()) ==
           LBool::True;
  }

  /// True when a model from a previous Sat answer is available.
  [[nodiscard]] bool has_model() const noexcept { return has_model_; }

  /// Assumptions that were proven jointly unsatisfiable by the last Unsat
  /// answer (a subset of the passed assumptions; the "final conflict").
  [[nodiscard]] const std::vector<Lit>& unsat_core() const noexcept {
    return conflict_core_;
  }

  /// Cumulative statistics.
  [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }

  /// True once the clause set has been proven unsatisfiable without
  /// assumptions; all future solves are Unsat.
  [[nodiscard]] bool in_conflict() const noexcept { return !ok_; }

  /// Snapshot the current problem clauses (plus level-0 units) as a CNF,
  /// e.g. for DIMACS export to external solvers. Learned clauses are
  /// excluded (they are implied).
  [[nodiscard]] std::vector<Clause> problem_clauses() const;

 private:
  static constexpr CRef kNoReason = kCRefUndef;

  /// Watchers of binary clauses carry this flag in their CRef: the blocker
  /// is the whole rest of the clause, so propagate() can enqueue/conflict
  /// without touching the arena at all.
  static constexpr CRef kBinaryBit = 0x80000000u;

  // ---- core CDCL -----------------------------------------------------
  /// Branch-free literal truth: one byte load from the per-literal mirror
  /// of assigns_ (the propagate() hot path's most frequent operation).
  [[nodiscard]] LBool value(Lit l) const noexcept {
    return static_cast<LBool>(lit_val_[static_cast<std::size_t>(l.idx())]);
  }
  [[nodiscard]] LBool value(Var v) const noexcept {
    return assigns_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int decision_level() const noexcept {
    return static_cast<int>(trail_lim_.size());
  }

  void attach_clause(CRef c);
  void enqueue(Lit l, CRef reason);
  /// The binary fast path in propagate() enqueues without swapping the
  /// implied literal to position 0; normalize lazily before conflict
  /// analysis reads a reason clause (which skips position 0 as "the
  /// implied literal").
  void normalize_reason(CRef c, Lit implied);
  CRef propagate();
  void analyze(CRef confl, Clause& out_learnt, int& out_btlevel,
               std::uint32_t& out_lbd);
  bool lit_redundant(Lit l, std::uint32_t ab_levels);
  void analyze_final(Lit p, std::vector<Lit>& out_core);
  void cancel_until(int level);
  Lit pick_branch_lit();
  SolveResult search(std::int64_t conflict_budget, const Budget& budget);
  void reduce_db();
  void garbage_collect();
  void rebuild_watches();

  // VSIDS / heap
  void var_bump(Var v);
  void var_decay_all() { var_inc_ /= kVarDecay; }
  void clause_bump(CRef c);
  void heap_insert(Var v);
  Var heap_pop_max();
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  [[nodiscard]] bool heap_less(Var a, Var b) const noexcept {
    return activity_[static_cast<std::size_t>(a)] <
           activity_[static_cast<std::size_t>(b)];
  }

  static std::uint64_t luby(std::uint64_t i);

  // ---- state ----------------------------------------------------------
  ClauseArena arena_;          // all clauses (problem + learned), inline
  std::vector<CRef> learnts_;  // refs of live learned clauses
  std::size_t n_problem_ = 0;  // live problem clause count
  WatchLists watches_;         // flat buckets indexed by Lit::idx()

  std::vector<LBool> assigns_;  // per var
  /// Per-literal truth mirror of assigns_ (False/True/Undef as uint8),
  /// updated in enqueue()/cancel_until(); makes value(Lit) one byte load.
  std::vector<std::uint8_t> lit_val_;
  std::vector<char> polarity_;  // saved phase per var (1 = last was true)
  std::vector<CRef> reason_;    // per var
  std::vector<int> level_;      // per var
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;  // per var
  double var_inc_ = 1.0;
  static constexpr double kVarDecay = 0.95;
  float clause_inc_ = 1.0f;
  static constexpr float kClauseDecay = 0.999f;
  std::vector<std::int32_t> heap_pos_;  // var -> heap index or -1
  std::vector<Var> heap_;               // max-heap by activity

  std::vector<char> seen_;          // per var scratch for analyze()
  std::vector<Lit> to_clear_;       // seen_ marks to undo after analyze()
  std::vector<Lit> analyze_stack_;  // DFS stack for lit_redundant()

  std::vector<Lit> assumptions_;
  std::vector<Lit> conflict_core_;

  double max_learnts_ = 0;  // reduceDB threshold (grows geometrically)
  /// Next stats_.propagations value at which search() re-checks the budget
  /// (deadline + cancellation) — keeps cancellation latency bounded even
  /// when conflicts are rare (satellite of the bound-race work).
  std::uint64_t next_budget_check_ = 0;
  static constexpr std::uint64_t kBudgetCheckProps = 4096;

  bool ok_ = true;
  bool has_model_ = false;
  std::vector<LBool> model_;

  SolverStats stats_;
};

}  // namespace ebmf::sat
