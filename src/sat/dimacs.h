#pragma once
/// \file dimacs.h
/// \brief DIMACS CNF import/export.
///
/// Lets the encoder's output be inspected with external tools (and external
/// CNFs be thrown at our solver in tests). Variables are 1-based in DIMACS;
/// internally 0-based.

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.h"

namespace ebmf::sat {

/// A parsed CNF: `num_vars` variables (0-based internally) and clauses.
struct Cnf {
  std::size_t num_vars = 0;
  std::vector<Clause> clauses;
};

/// Parse DIMACS CNF text. Throws std::runtime_error on malformed input.
/// Comment lines (c ...) and the problem line (p cnf V C) are handled; the
/// declared counts are verified.
Cnf parse_dimacs(std::istream& in);

/// Convenience: parse from a string.
Cnf parse_dimacs(const std::string& text);

/// Serialize a CNF to DIMACS.
void write_dimacs(std::ostream& out, const Cnf& cnf);

}  // namespace ebmf::sat
