#include "sat/brute.h"

#include <algorithm>

namespace ebmf::sat {

namespace {

/// Assignment state: -1 unassigned, 0 false, 1 true.
using Assign = std::vector<signed char>;

bool dpll(const std::vector<Clause>& clauses, Assign& a) {
  // Unit propagation to fixpoint.
  std::vector<std::pair<Var, signed char>> trail;  // for undo
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& c : clauses) {
      int unassigned = 0;
      Lit unit;
      bool satisfied = false;
      for (Lit l : c) {
        const signed char v = a[static_cast<std::size_t>(l.var())];
        if (v < 0) {
          ++unassigned;
          unit = l;
        } else if ((v == 1) != l.sign()) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      if (unassigned == 0) {  // conflict
        for (auto& [var, old] : trail) a[static_cast<std::size_t>(var)] = old;
        return false;
      }
      if (unassigned == 1) {
        trail.emplace_back(unit.var(), a[static_cast<std::size_t>(unit.var())]);
        a[static_cast<std::size_t>(unit.var())] = unit.sign() ? 0 : 1;
        changed = true;
      }
    }
  }
  // Pick an unassigned variable.
  Var branch = kNoVar;
  for (std::size_t v = 0; v < a.size(); ++v)
    if (a[v] < 0) {
      branch = static_cast<Var>(v);
      break;
    }
  if (branch == kNoVar) return true;  // all assigned, no conflict
  for (signed char val : {1, 0}) {
    a[static_cast<std::size_t>(branch)] = val;
    if (dpll(clauses, a)) return true;
  }
  a[static_cast<std::size_t>(branch)] = -1;
  for (auto& [var, old] : trail) a[static_cast<std::size_t>(var)] = old;
  return false;
}

}  // namespace

std::optional<std::vector<bool>> brute_force_sat(const Cnf& cnf) {
  Assign a(cnf.num_vars, -1);
  for (const auto& c : cnf.clauses)
    if (c.empty()) return std::nullopt;
  if (!dpll(cnf.clauses, a)) return std::nullopt;
  std::vector<bool> model(cnf.num_vars);
  for (std::size_t v = 0; v < cnf.num_vars; ++v) model[v] = a[v] == 1;
  return model;
}

bool model_satisfies(const Cnf& cnf, const std::vector<bool>& model) {
  for (const auto& c : cnf.clauses) {
    bool sat = false;
    for (Lit l : c) {
      if (static_cast<std::size_t>(l.var()) >= model.size()) return false;
      if (model[static_cast<std::size_t>(l.var())] != l.sign()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

}  // namespace ebmf::sat
