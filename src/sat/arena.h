#pragma once
/// \file arena.h
/// \brief Contiguous clause storage and flat watch lists for the CDCL solver.
///
/// The first solver generation kept one heap-allocated `std::vector<Lit>`
/// per clause behind a `std::vector<ClauseData>`, so every clause visit in
/// propagate() chased two pointers into unrelated cache lines. ClauseArena
/// replaces that with a single `std::uint32_t` buffer in the MiniSat
/// RegionAllocator tradition: a clause is a packed three-word header
/// (size/flags, LBD, activity) followed by its literals inline, and a CRef
/// is simply the header's offset into the buffer. Deletion only marks the
/// header; reduce_db() runs a compacting GC that rewrites every live
/// reference (watchers, reasons, learnt list) to the moved clauses.
///
/// WatchLists is the matching flat occurrence structure: all watcher
/// buckets live in one contiguous pool with per-literal (offset, size,
/// capacity) records, watcher = (CRef, blocker literal) packed in eight
/// bytes, so scanning a literal's watchers is a linear walk with the
/// blocker on the same cache line as the clause reference. A full bucket
/// relocates itself to the end of the pool with doubled capacity (classic
/// amortized growth, no per-bucket allocation). Abandoned slots are NOT
/// compacted: clear_all() keeps every bucket's offset and capacity so the
/// post-GC watch rebuild refills in place without reallocating. The pool
/// therefore holds at most the sum of bucket capacities (~2x the live
/// watchers, the same bound a vector-per-literal layout pays in capacity),
/// and it stops growing once bucket sizes reach steady state.

#include <bit>
#include <cstdint>
#include <vector>

#include "sat/types.h"
#include "support/contracts.h"

namespace ebmf::sat {

/// A clause reference: offset of the clause header inside the arena.
using CRef = std::uint32_t;

/// Sentinel for "no clause" (also used as the solver's "no reason").
inline constexpr CRef kCRefUndef = 0xFFFFFFFFu;

/// Hard capacity limit: the top CRef bit is reserved for the solver's
/// binary-watcher tag, so clause offsets must stay below 2^31 words
/// (8 GiB of clauses). alloc() checks this — a formula that large must
/// fail loudly, not silently corrupt references.
inline constexpr std::size_t kArenaWordLimit = std::size_t{1} << 31;

/// Packed clause storage. Layout per clause, in 32-bit words:
///   [0] meta: size << 2 | learnt << 1 | deleted
///   [1] LBD (learnt clauses; 0 for problem clauses)
///   [2] activity (float bit pattern)
///   [3] saved search position (propagate() resumes its replacement-watch
///       scan here instead of rescanning the false prefix — CaDiCaL's
///       "literal position" optimization)
///   [4..4+size) literals (Lit bit patterns)
class ClauseArena {
 public:
  static constexpr std::uint32_t kHeaderWords = 4;

  /// Append a clause; returns its reference. `size` must be >= 1.
  CRef alloc(const Lit* lits, std::uint32_t size, bool learnt,
             std::uint32_t lbd, float activity) {
    EBMF_ASSERT(size >= 1);
    EBMF_EXPECTS(data_.size() + kHeaderWords + size < kArenaWordLimit);
    const CRef c = static_cast<CRef>(data_.size());
    // Growth stays amortized-doubling (plain push_back): an exact-fit
    // reserve here would recopy the whole arena on every allocation.
    data_.push_back((size << 2) | (learnt ? 2u : 0u));
    data_.push_back(lbd);
    data_.push_back(std::bit_cast<std::uint32_t>(activity));
    data_.push_back(2);  // search position: first non-watched literal
    for (std::uint32_t i = 0; i < size; ++i)
      data_.push_back(std::bit_cast<std::uint32_t>(lits[i]));
    return c;
  }

  /// Saved replacement-watch search position (in [2, size)).
  [[nodiscard]] std::uint32_t search_pos(CRef c) const { return data_[c + 3]; }
  void set_search_pos(CRef c, std::uint32_t pos) { data_[c + 3] = pos; }

  [[nodiscard]] std::uint32_t size(CRef c) const { return data_[c] >> 2; }
  [[nodiscard]] bool learnt(CRef c) const { return (data_[c] & 2u) != 0; }
  [[nodiscard]] bool deleted(CRef c) const { return (data_[c] & 1u) != 0; }

  /// Flag the clause dead; its words are reclaimed by the next compact().
  void mark_deleted(CRef c) {
    if (!deleted(c)) wasted_ += kHeaderWords + size(c);
    data_[c] |= 1u;
  }

  [[nodiscard]] std::uint32_t lbd(CRef c) const { return data_[c + 1]; }
  void set_lbd(CRef c, std::uint32_t lbd) { data_[c + 1] = lbd; }

  [[nodiscard]] float activity(CRef c) const {
    return std::bit_cast<float>(data_[c + 2]);
  }
  void set_activity(CRef c, float a) {
    data_[c + 2] = std::bit_cast<std::uint32_t>(a);
  }

  [[nodiscard]] Lit lit(CRef c, std::uint32_t i) const {
    return std::bit_cast<Lit>(data_[c + kHeaderWords + i]);
  }
  void set_lit(CRef c, std::uint32_t i, Lit l) {
    data_[c + kHeaderWords + i] = std::bit_cast<std::uint32_t>(l);
  }

  /// Raw literal words of a clause — the propagate() hot loop reads and
  /// swaps literals through this pointer (valid until the next alloc).
  [[nodiscard]] std::uint32_t* lits_raw(CRef c) {
    return data_.data() + c + kHeaderWords;
  }
  [[nodiscard]] const std::uint32_t* lits_raw(CRef c) const {
    return data_.data() + c + kHeaderWords;
  }

  // -- sequential walk (the arena is self-describing) ---------------------
  [[nodiscard]] CRef walk_begin() const { return 0; }
  [[nodiscard]] CRef walk_end() const {
    return static_cast<CRef>(data_.size());
  }
  [[nodiscard]] CRef walk_next(CRef c) const {
    return c + kHeaderWords + size(c);
  }

  [[nodiscard]] std::size_t words() const { return data_.size(); }
  [[nodiscard]] std::size_t bytes() const {
    return data_.size() * sizeof(std::uint32_t);
  }
  [[nodiscard]] std::size_t wasted_words() const { return wasted_; }

  /// Compacting GC: drop deleted clauses, slide live ones down, and leave a
  /// forwarding address for each moved clause readable via `forward()`
  /// until the next alloc. Callers must then remap every CRef they hold
  /// (reasons, learnt list, watchers).
  void compact() {
    std::vector<std::uint32_t> fresh;
    fresh.reserve(data_.size() - wasted_);
    for (CRef c = walk_begin(); c < walk_end(); c = walk_next(c)) {
      const std::uint32_t n = size(c);
      if (deleted(c)) continue;
      const CRef moved = static_cast<CRef>(fresh.size());
      fresh.insert(fresh.end(), data_.begin() + c,
                   data_.begin() + c + kHeaderWords + n);
      // The old LBD word becomes the forwarding address; the clause itself
      // lives on in `fresh`.
      data_[c + 1] = moved;
    }
    forwarding_ = std::move(data_);
    data_ = std::move(fresh);
    wasted_ = 0;
  }

  /// New reference of a live clause after the last compact().
  [[nodiscard]] CRef forward(CRef old) const { return forwarding_[old + 1]; }

  /// Release the forwarding table once every holder has been remapped.
  void drop_forwarding() {
    forwarding_.clear();
    forwarding_.shrink_to_fit();
  }

 private:
  std::vector<std::uint32_t> data_;
  std::vector<std::uint32_t> forwarding_;  // previous buffer during a GC
  std::size_t wasted_ = 0;                 // words held by deleted clauses
};

/// One watched-literal occurrence: the clause and a "blocker" literal whose
/// satisfaction lets propagate() skip the clause without touching it.
struct Watcher {
  CRef cref = kCRefUndef;
  Lit blocker;
};
static_assert(sizeof(Watcher) == 8, "Watcher must stay two words");

/// All watcher buckets in one pool, indexed by Lit::idx().
class WatchLists {
 public:
  struct Bucket {
    std::uint32_t off = 0;
    std::uint32_t size = 0;
    std::uint32_t cap = 0;
  };

  /// Register one more variable (two literal buckets).
  void add_var() {
    buckets_.emplace_back();
    buckets_.emplace_back();
  }

  [[nodiscard]] std::size_t num_lits() const { return buckets_.size(); }

  [[nodiscard]] const Bucket& bucket(std::size_t lit_idx) const {
    return buckets_[lit_idx];
  }

  /// Pool base pointer. Invalidated by push() growth — the propagate loop
  /// re-derives its cursor from bucket().off after every push.
  [[nodiscard]] Watcher* pool() { return pool_.data(); }

  void push(std::size_t lit_idx, Watcher w) {
    Bucket& b = buckets_[lit_idx];
    if (b.size == b.cap) grow(b);
    pool_[b.off + b.size++] = w;
  }

  /// Shrink a bucket after in-place compaction of its live watchers.
  void shrink(std::size_t lit_idx, std::uint32_t new_size) {
    EBMF_ASSERT(new_size <= buckets_[lit_idx].size);
    buckets_[lit_idx].size = new_size;
  }

  /// Empty every bucket, keeping offsets and capacities for reuse (the
  /// solver refills them right away when rebuilding after a GC).
  void clear_all() {
    for (Bucket& b : buckets_) b.size = 0;
  }

  [[nodiscard]] std::size_t pool_words() const { return pool_.size(); }

 private:
  void grow(Bucket& b) {
    const std::uint32_t cap = b.cap == 0 ? 4 : b.cap * 2;
    const std::uint32_t off = static_cast<std::uint32_t>(pool_.size());
    pool_.resize(pool_.size() + cap);
    for (std::uint32_t i = 0; i < b.size; ++i)
      pool_[off + i] = pool_[b.off + i];
    b.off = off;
    b.cap = cap;
  }

  std::vector<Watcher> pool_;
  std::vector<Bucket> buckets_;
};

}  // namespace ebmf::sat
