#pragma once
/// \file brute.h
/// \brief A tiny reference SAT procedure (DPLL without learning) used by the
/// test suite to cross-check the CDCL solver on small random formulas.
///
/// Deliberately independent of the Solver class: different data structures,
/// different search order, no shared code — so agreement between the two is
/// meaningful evidence of correctness.

#include <optional>
#include <vector>

#include "sat/dimacs.h"
#include "sat/types.h"

namespace ebmf::sat {

/// Decide satisfiability of `cnf` by plain DPLL with unit propagation.
/// Returns a model (one bool per variable) when satisfiable, std::nullopt
/// when not. Exponential; intended for #vars ≲ 30.
std::optional<std::vector<bool>> brute_force_sat(const Cnf& cnf);

/// Check a model against a CNF (every clause has a true literal).
bool model_satisfies(const Cnf& cnf, const std::vector<bool>& model);

}  // namespace ebmf::sat
