#include "sat/cardinality.h"

#include <algorithm>

namespace ebmf::sat {

namespace {

void amo_pairwise(Solver& s, const std::vector<Lit>& lits) {
  for (std::size_t i = 0; i < lits.size(); ++i)
    for (std::size_t j = i + 1; j < lits.size(); ++j)
      s.add_clause(lits[i].neg(), lits[j].neg());
}

/// Commander encoding: split into groups of 3, pairwise within a group,
/// commander variable per group implied by members, then recurse on
/// commanders. Linear clauses and auxiliaries.
void amo_commander(Solver& s, const std::vector<Lit>& lits) {
  if (lits.size() <= 6) {
    amo_pairwise(s, lits);
    return;
  }
  constexpr std::size_t kGroup = 3;
  std::vector<Lit> commanders;
  commanders.reserve((lits.size() + kGroup - 1) / kGroup);
  for (std::size_t g = 0; g < lits.size(); g += kGroup) {
    const std::size_t end = std::min(g + kGroup, lits.size());
    std::vector<Lit> group(lits.begin() + static_cast<std::ptrdiff_t>(g),
                           lits.begin() + static_cast<std::ptrdiff_t>(end));
    amo_pairwise(s, group);
    const Lit cmd = pos(s.new_var());
    for (Lit l : group) s.add_clause(l.neg(), cmd);  // member -> commander
    commanders.push_back(cmd);
  }
  amo_commander(s, commanders);
}

}  // namespace

void add_at_most_one(Solver& s, const std::vector<Lit>& lits,
                     AmoEncoding enc) {
  if (lits.size() <= 1) return;
  switch (enc) {
    case AmoEncoding::Pairwise:
      amo_pairwise(s, lits);
      break;
    case AmoEncoding::Commander:
      amo_commander(s, lits);
      break;
  }
}

void add_exactly_one(Solver& s, const std::vector<Lit>& lits,
                     AmoEncoding enc) {
  EBMF_EXPECTS(!lits.empty());
  s.add_clause(lits);  // at least one
  add_at_most_one(s, lits, enc);
}

void add_at_most_k(Solver& s, const std::vector<Lit>& lits, std::size_t k) {
  const std::size_t n = lits.size();
  if (k >= n) return;
  if (k == 0) {
    for (Lit l : lits) s.add_clause(l.neg());
    return;
  }
  if (k == 1) {
    add_at_most_one(s, lits,
                    n > 8 ? AmoEncoding::Commander : AmoEncoding::Pairwise);
    return;
  }
  // Sinz sequential counter: aux r[i][j] == "at least j+1 true among first
  // i+1 literals".
  std::vector<std::vector<Lit>> r(n, std::vector<Lit>(k));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < k; ++j) r[i][j] = pos(s.new_var());

  s.add_clause(lits[0].neg(), r[0][0]);
  for (std::size_t j = 1; j < k; ++j) s.add_clause(r[0][j].neg());
  for (std::size_t i = 1; i < n; ++i) {
    s.add_clause(lits[i].neg(), r[i][0]);
    s.add_clause(r[i - 1][0].neg(), r[i][0]);
    for (std::size_t j = 1; j < k; ++j) {
      s.add_clause(Clause{lits[i].neg(), r[i - 1][j - 1].neg(), r[i][j]});
      s.add_clause(r[i - 1][j].neg(), r[i][j]);
    }
    // Overflow: literal i true while k already reached among the prefix.
    s.add_clause(lits[i].neg(), r[i - 1][k - 1].neg());
  }
}

namespace {

/// Build a totalizer node over lits[begin, end): returns one-sided unary
/// outputs o[0..r-1], where o[i] is implied by "at least i+1 inputs true"
/// and r = min(count, cap). Counts above cap collapse onto o[cap-1].
std::vector<Lit> totalizer_tree(Solver& s, const std::vector<Lit>& lits,
                                std::size_t begin, std::size_t end,
                                std::size_t cap) {
  const std::size_t n = end - begin;
  EBMF_ASSERT(n >= 1);
  if (n == 1) return {lits[begin]};
  const std::size_t mid = begin + n / 2;
  const auto left = totalizer_tree(s, lits, begin, mid, cap);
  const auto right = totalizer_tree(s, lits, mid, end, cap);
  const std::size_t r = std::min(n, cap);
  std::vector<Lit> out;
  out.reserve(r);
  for (std::size_t i = 0; i < r; ++i) out.push_back(pos(s.new_var()));
  for (std::size_t i = 0; i <= left.size(); ++i) {
    for (std::size_t j = 0; j <= right.size(); ++j) {
      const std::size_t sum = i + j;
      if (sum == 0) continue;
      const std::size_t idx = std::min(sum, r) - 1;
      Clause clause;
      if (i > 0) clause.push_back(left[i - 1].neg());
      if (j > 0) clause.push_back(right[j - 1].neg());
      clause.push_back(out[idx]);
      s.add_clause(std::move(clause));
    }
  }
  return out;
}

}  // namespace

void add_at_most_k_totalizer(Solver& s, const std::vector<Lit>& lits,
                             std::size_t k) {
  const std::size_t n = lits.size();
  if (k >= n) return;
  if (k == 0) {
    for (Lit l : lits) s.add_clause(l.neg());
    return;
  }
  // Outputs truncated at k+1; forbidding the (k+1)-th caps the count.
  const auto outputs = totalizer_tree(s, lits, 0, n, k + 1);
  EBMF_ASSERT(outputs.size() == k + 1);
  s.add_clause(outputs[k].neg());
}

void add_at_least_k(Solver& s, const std::vector<Lit>& lits, std::size_t k) {
  EBMF_EXPECTS(k <= lits.size());
  if (k == 0) return;
  if (k == 1) {
    s.add_clause(lits);
    return;
  }
  std::vector<Lit> negs;
  negs.reserve(lits.size());
  for (Lit l : lits) negs.push_back(l.neg());
  add_at_most_k(s, negs, lits.size() - k);
}

}  // namespace ebmf::sat
