/// \file logrotate.cpp
/// \brief RotatingFile: append, size check, rename-and-reopen.

#include "support/logrotate.h"

#include <cstdio>
#include <mutex>

namespace ebmf {

struct RotatingFile::Impl {
  std::mutex mutex;
  std::FILE* file = nullptr;
  std::string path;
  std::uint64_t max_bytes = kDefaultMaxBytes;
  std::uint64_t bytes = 0;  ///< Size of the current generation.
};

RotatingFile::~RotatingFile() {
  close();
  delete impl_;
}

bool RotatingFile::open(const std::string& path, std::string* error,
                        std::uint64_t max_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open log file: " + path;
    return false;
  }
  if (impl_ == nullptr) impl_ = new Impl;
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->file != nullptr) std::fclose(impl_->file);
  impl_->file = f;
  impl_->path = path;
  if (max_bytes != 0) impl_->max_bytes = max_bytes;
  const long at = std::ftell(f);
  impl_->bytes = at > 0 ? static_cast<std::uint64_t>(at) : 0;
  return true;
}

bool RotatingFile::is_open() const {
  if (impl_ == nullptr) return false;
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->file != nullptr;
}

void RotatingFile::write_line(const std::string& line) {
  if (impl_ == nullptr) return;
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->file == nullptr) return;
  if (impl_->bytes >= impl_->max_bytes) {
    // Rotate between whole lines: `path` → `path.1` (dropping the previous
    // `.1` generation), then start a fresh `path`.
    std::fclose(impl_->file);
    impl_->file = nullptr;
    const std::string shifted = impl_->path + ".1";
    std::remove(shifted.c_str());
    std::rename(impl_->path.c_str(), shifted.c_str());
    impl_->file = std::fopen(impl_->path.c_str(), "a");
    impl_->bytes = 0;
    if (impl_->file == nullptr) return;  // sink lost; appends become no-ops
  }
  std::fwrite(line.data(), 1, line.size(), impl_->file);
  impl_->bytes += line.size();
  if (line.empty() || line.back() != '\n') {
    std::fputc('\n', impl_->file);
    ++impl_->bytes;
  }
  std::fflush(impl_->file);
}

void RotatingFile::flush() {
  if (impl_ == nullptr) return;
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->file != nullptr) std::fflush(impl_->file);
}

void RotatingFile::close() {
  if (impl_ == nullptr) return;
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->file != nullptr) std::fclose(impl_->file);
  impl_->file = nullptr;
}

}  // namespace ebmf
