#pragma once
/// \file stopwatch.h
/// \brief Wall-clock timing used by the SAP solver's anytime loop and by the
/// benchmark harnesses.

#include <chrono>
#include <limits>

namespace ebmf {

/// Monotonic wall-clock stopwatch. Started at construction; restartable.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restart the clock.
  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last restart().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// A soft deadline: hand one to long-running solvers so they can stop early
/// and report the best answer found so far (the paper's "terminate at any
/// time, return P" property of Algorithm 1).
class Deadline {
 public:
  /// No limit.
  Deadline() = default;

  /// Expire `budget_seconds` from now; non-positive means "already expired".
  static Deadline after(double budget_seconds) {
    Deadline d;
    d.limited_ = true;
    d.expiry_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(budget_seconds));
    return d;
  }

  /// True when the budget is spent. Unlimited deadlines never expire.
  [[nodiscard]] bool expired() const {
    return limited_ && std::chrono::steady_clock::now() >= expiry_;
  }

  /// True when a finite budget was set.
  [[nodiscard]] bool limited() const { return limited_; }

  /// Seconds until expiry: +infinity when unlimited, ≤ 0 once expired.
  /// Lets callers compare "time we could still spend" against "time a
  /// previous attempt spent" (the cache's upgrade-retry policy).
  [[nodiscard]] double remaining_seconds() const {
    if (!limited_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(expiry_ -
                                         std::chrono::steady_clock::now())
        .count();
  }

 private:
  bool limited_ = false;
  std::chrono::steady_clock::time_point expiry_{};
};

}  // namespace ebmf
