#pragma once
/// \file logrotate.h
/// \brief Size-rotated append-only line sink for the JSONL observability
/// files (`--slow-log`, `--trace-file`).
///
/// A long-lived server's slow-request log and trace file grow without
/// bound; RotatingFile caps them: when an append would push the file past
/// `max_bytes`, the current file is renamed `path` → `path.1` (replacing
/// any previous `path.1` — two generations are kept) and a fresh `path` is
/// opened. Rotation is by whole lines, so neither generation ever holds a
/// torn record. Thread-safe; `flush()` is called by the server/router
/// drain so the tail of a log survives a SIGTERM.

#include <cstdint>
#include <string>

namespace ebmf {

class RotatingFile {
 public:
  /// Default rotation threshold (64 MiB) — a few hundred thousand slow-log
  /// lines per generation.
  static constexpr std::uint64_t kDefaultMaxBytes = 64ull << 20;

  RotatingFile() = default;
  ~RotatingFile();
  RotatingFile(const RotatingFile&) = delete;
  RotatingFile& operator=(const RotatingFile&) = delete;

  /// Open `path` for appending (rotation keeps `path.1`). `max_bytes == 0`
  /// keeps the default threshold. False + `error` when the file can't be
  /// opened. Reopening replaces the previous sink.
  bool open(const std::string& path, std::string* error,
            std::uint64_t max_bytes = 0);

  [[nodiscard]] bool is_open() const;

  /// Append one line (a trailing newline is added when missing), rotating
  /// first when the file has reached the threshold. No-op when closed.
  void write_line(const std::string& line);

  /// fflush the current generation (drain hook). No-op when closed.
  void flush();

  void close();

 private:
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace ebmf
