#pragma once
/// \file budget.h
/// \brief The shared resource budget threaded through every solver.
///
/// Before the engine facade each backend carried its own budget fields
/// (`SapOptions::deadline` + `conflicts_per_call`, `CompletionOptions`
/// duplicates, DLX node caps, a bare `Deadline` in the packing options).
/// Budget unifies them: one value type holding the wall-clock deadline, the
/// per-SAT-call conflict cap, the search-node cap, and an optional shared
/// cancellation flag for cooperative interruption across threads.
///
/// All solvers honour the anytime contract: an exhausted budget degrades the
/// optimality certificate, never the validity of the returned partition.

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "obs/progress.h"
#include "support/stopwatch.h"

namespace ebmf {

/// A resource budget for one solve. Default-constructed: unlimited.
///
/// Copies share the cancellation flag, so a Budget handed to worker threads
/// can be revoked from the owner via request_cancel().
struct Budget {
  Budget() = default;

  /// Budgets convert from a bare deadline (the pre-facade calling idiom).
  Budget(Deadline d) : deadline(d) {}  // NOLINT(google-explicit-constructor)

  /// A budget that expires `seconds` from now.
  static Budget after(double seconds) { return Budget(Deadline::after(seconds)); }

  Deadline deadline;                ///< Soft wall-clock limit.
  std::int64_t max_conflicts = -1;  ///< Per SAT decision call (<0 = unlimited).
  std::uint64_t max_nodes = 0;      ///< Search-node cap (DLX/brute; 0 = unlimited).
  /// Optional shared stop flag; null means "not cancellable".
  std::shared_ptr<std::atomic<bool>> cancel;
  /// Optional secondary stop flag, observed in addition to `cancel`. The
  /// SAP bound race gives every probe its own `cancel` (so a winner can
  /// retire just the redundant probes) while chaining the caller's original
  /// flag here — a client disconnect still stops the whole race.
  std::shared_ptr<std::atomic<bool>> also_cancel;
  /// Optional live-progress sink (obs/progress.h). Copies of a Budget
  /// share it — exactly like `cancel` — so a strategy can publish
  /// incumbent/gap frames mid-solve and the server's `{"op":"watch"}`
  /// subscribers see them. Null means "nobody is watching" and publishing
  /// helpers are no-ops.
  obs::ProgressSinkPtr progress;

  /// Publish one progress frame when a sink is attached (no-op otherwise).
  void publish_progress(obs::ProgressFrame frame) const {
    if (progress) progress->publish(std::move(frame));
  }

  /// Make this budget cancellable (idempotent) and return it for chaining.
  Budget& cancellable() {
    if (!cancel) cancel = std::make_shared<std::atomic<bool>>(false);
    return *this;
  }

  /// Ask every solver sharing this budget's flag to stop at the next
  /// checkpoint. No-op when not cancellable.
  void request_cancel() const {
    if (cancel) cancel->store(true, std::memory_order_relaxed);
  }

  /// True when cancellation was requested on either flag.
  [[nodiscard]] bool cancelled() const {
    return (cancel && cancel->load(std::memory_order_relaxed)) ||
           (also_cancel && also_cancel->load(std::memory_order_relaxed));
  }

  /// True when work should stop now (cancelled or past the deadline).
  [[nodiscard]] bool exhausted() const {
    return cancelled() || deadline.expired();
  }

  /// True when any finite limit is set.
  [[nodiscard]] bool limited() const {
    return deadline.limited() || max_conflicts >= 0 || max_nodes > 0 ||
           cancel != nullptr || also_cancel != nullptr;
  }
};

}  // namespace ebmf
