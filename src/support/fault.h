#pragma once
/// \file fault.h
/// \brief Process-wide fault injection for the net path (`ebmf::fault`).
///
/// The HA drills need to prove the fleet survives the failures that happen
/// in production — half-open connections, slow replies, writes torn mid-line
/// — not just clean kill -9s. This layer compiles the failure modes straight
/// into `service::net` so every tier (client, router pools, peer sync,
/// backend announce) exercises the same degraded transport.
///
/// Faults are off by default and cost one relaxed atomic load on the hot
/// path. They are enabled either programmatically (tests call `configure`)
/// or via the `EBMF_FAULT` environment variable (CI drills), a
/// comma-separated `key=value` list:
///
///   EBMF_FAULT="drop_connect=0.05,drop_write=0.02,torn_write=0.02,
///               delay_p=0.1,delay_ms=5,seed=42"
///
///  * `drop_connect` — probability a `tcp_connect` fails with ECONNREFUSED.
///  * `drop_write`   — probability a `write_line` aborts before sending.
///  * `torn_write`   — probability a `write_line` sends only a prefix and
///                     then shuts the socket down (a torn line: the peer
///                     sees bytes but never a newline).
///  * `delay_p` / `delay_ms` — probability and duration of an injected
///                     stall before a write (slow-reply simulation).
///  * `seed`         — deterministic stream for the Bernoulli draws.
///
/// Injection decisions are counted so tests can assert the drill actually
/// drilled something (a fault config that never fires proves nothing).

#include <cstddef>
#include <cstdint>
#include <string>

namespace ebmf::fault {

/// Probabilities in [0,1]; all zero means the layer is inert.
struct Config {
  double drop_connect = 0.0;
  double drop_write = 0.0;
  double torn_write = 0.0;
  double delay_p = 0.0;
  std::uint32_t delay_ms = 0;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  [[nodiscard]] bool any() const noexcept {
    return drop_connect > 0.0 || drop_write > 0.0 || torn_write > 0.0 ||
           (delay_p > 0.0 && delay_ms > 0);
  }
};

/// Counts of faults actually injected since process start.
struct Stats {
  std::uint64_t connect_drops = 0;
  std::uint64_t write_drops = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t delays = 0;
};

/// Install a fault plan (tests). Replaces any previous plan and reseeds the
/// decision stream. Thread-safe.
void configure(const Config& config);

/// Parse `spec` (the EBMF_FAULT format above) and install it. Returns false
/// (and installs nothing) on a malformed spec. An empty spec disables
/// injection.
bool configure_from_spec(const std::string& spec);

/// Disable all injection.
void reset();

/// The currently installed plan.
[[nodiscard]] Config current();

/// Injection counts so far.
[[nodiscard]] Stats stats();

// ---- hooks called from service::net (cheap no-ops when inert) -------------

/// True if this connect attempt should fail artificially.
bool should_drop_connect();

/// True if this write should be dropped without sending.
bool should_drop_write();

/// Returns `full` normally; a smaller value when this write should be torn
/// after that many bytes. Precondition: full > 0.
std::size_t maybe_tear(std::size_t full);

/// Sleeps for the injected delay (if one fires) before a write.
void maybe_delay();

/// Reads EBMF_FAULT from the environment (once per process) and installs it.
/// Called lazily by the hooks; exposed for tests and early CLI setup.
void ensure_env_loaded();

}  // namespace ebmf::fault
