#include "support/fault.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "support/rng.h"

namespace ebmf::fault {
namespace {

// One relaxed load guards every hook; the slow path (an armed plan) takes
// the mutex for the Bernoulli draw so the decision stream is deterministic
// under a fixed seed even with concurrent callers.
std::atomic<bool> g_armed{false};
std::mutex g_mutex;
Config g_config;                           // guarded by g_mutex
Rng g_rng{0x9e3779b97f4a7c15ull};          // guarded by g_mutex
std::once_flag g_env_once;

std::atomic<std::uint64_t> g_connect_drops{0};
std::atomic<std::uint64_t> g_write_drops{0};
std::atomic<std::uint64_t> g_torn_writes{0};
std::atomic<std::uint64_t> g_delays{0};

bool parse_double(const std::string& text, double& out) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || value < 0.0) return false;
  out = value;
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  out = value;
  return true;
}

}  // namespace

void configure(const Config& config) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_config = config;
  g_rng = Rng(config.seed);
  g_armed.store(config.any(), std::memory_order_release);
}

bool configure_from_spec(const std::string& spec) {
  Config config;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    std::uint64_t u64 = 0;
    if (key == "drop_connect") {
      if (!parse_double(value, config.drop_connect)) return false;
    } else if (key == "drop_write") {
      if (!parse_double(value, config.drop_write)) return false;
    } else if (key == "torn_write") {
      if (!parse_double(value, config.torn_write)) return false;
    } else if (key == "delay_p") {
      if (!parse_double(value, config.delay_p)) return false;
    } else if (key == "delay_ms") {
      if (!parse_u64(value, u64)) return false;
      config.delay_ms = static_cast<std::uint32_t>(u64);
    } else if (key == "seed") {
      if (!parse_u64(value, config.seed)) return false;
    } else {
      return false;
    }
  }
  configure(config);
  return true;
}

void reset() { configure(Config{}); }

Config current() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_config;
}

Stats stats() {
  Stats out;
  out.connect_drops = g_connect_drops.load(std::memory_order_relaxed);
  out.write_drops = g_write_drops.load(std::memory_order_relaxed);
  out.torn_writes = g_torn_writes.load(std::memory_order_relaxed);
  out.delays = g_delays.load(std::memory_order_relaxed);
  return out;
}

void ensure_env_loaded() {
  std::call_once(g_env_once, [] {
    const char* spec = std::getenv("EBMF_FAULT");
    if (spec != nullptr && *spec != '\0') configure_from_spec(spec);
  });
}

bool should_drop_connect() {
  ensure_env_loaded();
  if (!g_armed.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_config.drop_connect <= 0.0 || !g_rng.chance(g_config.drop_connect))
    return false;
  g_connect_drops.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool should_drop_write() {
  ensure_env_loaded();
  if (!g_armed.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_config.drop_write <= 0.0 || !g_rng.chance(g_config.drop_write))
    return false;
  g_write_drops.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t maybe_tear(std::size_t full) {
  ensure_env_loaded();
  if (!g_armed.load(std::memory_order_acquire)) return full;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_config.torn_write <= 0.0 || !g_rng.chance(g_config.torn_write))
    return full;
  g_torn_writes.fetch_add(1, std::memory_order_relaxed);
  // Tear somewhere strictly inside the line so the peer sees a prefix
  // without its newline (full includes the trailing '\n').
  return full <= 1 ? 0 : static_cast<std::size_t>(g_rng.below(full - 1));
}

void maybe_delay() {
  ensure_env_loaded();
  if (!g_armed.load(std::memory_order_acquire)) return;
  std::uint32_t delay_ms = 0;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (g_config.delay_p <= 0.0 || g_config.delay_ms == 0 ||
        !g_rng.chance(g_config.delay_p))
      return;
    g_delays.fetch_add(1, std::memory_order_relaxed);
    delay_ms = g_config.delay_ms;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
}

}  // namespace ebmf::fault
