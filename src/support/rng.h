#pragma once
/// \file rng.h
/// \brief Deterministic pseudo-random number generation for benchmark
/// generators and shuffled heuristic trials.
///
/// Every randomized component of the library takes an explicit Rng (or a
/// seed) so that benchmark tables and test sweeps are bit-reproducible across
/// runs and platforms. The engine is xoshiro256** seeded via SplitMix64 —
/// fast, high quality, and trivially portable (no libc rand, no
/// std::mt19937 implementation divergence concerns for streams we persist).

#include <cstdint>
#include <vector>

#include "support/contracts.h"

namespace ebmf {

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG.
///
/// Satisfies std::uniform_random_bit_generator so it can drive <random>
/// distributions, but the library only uses the self-contained helpers below
/// to keep generated benchmark streams platform-independent.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed the generator; equal seeds give equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// A random permutation of {0, 1, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Pick k distinct indices from {0,...,n-1} (ascending order).
  /// Precondition: k <= n.
  std::vector<std::size_t> sample(std::size_t n, std::size_t k);

  /// Derive an independent child generator (for parallel/per-trial streams).
  Rng split() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ebmf
