#pragma once
/// \file contracts.h
/// \brief Precondition / postcondition / invariant checking for the ebmf
/// library, in the spirit of the C++ Core Guidelines (I.6, I.8) and the GSL
/// `Expects` / `Ensures` macros.
///
/// Violations throw ebmf::ContractViolation so that tests can assert on them
/// and library users get a diagnosable error instead of undefined behaviour.
/// The checks are cheap (single branch) and are kept enabled in all build
/// types; hot inner loops use EBMF_ASSERT which compiles out in NDEBUG.

#include <stdexcept>
#include <string>

namespace ebmf {

/// Thrown when a precondition, postcondition, or invariant of a public API
/// is violated. Carries the failing expression and source location.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace ebmf

/// Check a precondition of a public API; throws ebmf::ContractViolation.
#define EBMF_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                           \
          : ::ebmf::detail::contract_fail("precondition", #cond, __FILE__, \
                                          __LINE__))

/// Check a postcondition of a public API; throws ebmf::ContractViolation.
#define EBMF_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::ebmf::detail::contract_fail("postcondition", #cond, __FILE__, \
                                          __LINE__))

/// Internal invariant check; disabled in NDEBUG builds (hot paths).
#ifdef NDEBUG
#define EBMF_ASSERT(cond) static_cast<void>(0)
#else
#define EBMF_ASSERT(cond)                                                \
  ((cond) ? static_cast<void>(0)                                         \
          : ::ebmf::detail::contract_fail("invariant", #cond, __FILE__, \
                                          __LINE__))
#endif
