#include "support/bitvec.h"

#include <bit>

namespace ebmf {

BitVec BitVec::from_string(const std::string& s) {
  BitVec v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EBMF_EXPECTS(s[i] == '0' || s[i] == '1');
    if (s[i] == '1') v.set(i);
  }
  return v;
}

void BitVec::fill() {
  for (auto& w : w_) w = ~std::uint64_t{0};
  trim();
}

std::size_t BitVec::count() const noexcept {
  std::size_t c = 0;
  for (auto w : w_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool BitVec::none() const noexcept {
  for (auto w : w_)
    if (w != 0) return false;
  return true;
}

std::size_t BitVec::find_first() const noexcept {
  for (std::size_t k = 0; k < w_.size(); ++k)
    if (w_[k] != 0)
      return k * 64 + static_cast<std::size_t>(std::countr_zero(w_[k]));
  return n_;
}

std::size_t BitVec::find_next(std::size_t i) const noexcept {
  ++i;
  if (i >= n_) return n_;
  std::size_t k = i >> 6;
  std::uint64_t w = w_[k] & (~std::uint64_t{0} << (i & 63));
  while (true) {
    if (w != 0) return k * 64 + static_cast<std::size_t>(std::countr_zero(w));
    if (++k == w_.size()) return n_;
    w = w_[k];
  }
}

bool BitVec::subset_of(const BitVec& other) const {
  EBMF_EXPECTS(n_ == other.n_);
  for (std::size_t k = 0; k < w_.size(); ++k)
    if ((w_[k] & ~other.w_[k]) != 0) return false;
  return true;
}

bool BitVec::disjoint(const BitVec& other) const {
  EBMF_EXPECTS(n_ == other.n_);
  for (std::size_t k = 0; k < w_.size(); ++k)
    if ((w_[k] & other.w_[k]) != 0) return false;
  return true;
}

BitVec& BitVec::operator|=(const BitVec& other) {
  EBMF_EXPECTS(n_ == other.n_);
  for (std::size_t k = 0; k < w_.size(); ++k) w_[k] |= other.w_[k];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  EBMF_EXPECTS(n_ == other.n_);
  for (std::size_t k = 0; k < w_.size(); ++k) w_[k] &= other.w_[k];
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  EBMF_EXPECTS(n_ == other.n_);
  for (std::size_t k = 0; k < w_.size(); ++k) w_[k] ^= other.w_[k];
  return *this;
}

BitVec& BitVec::operator-=(const BitVec& other) {
  EBMF_EXPECTS(n_ == other.n_);
  for (std::size_t k = 0; k < w_.size(); ++k) w_[k] &= ~other.w_[k];
  return *this;
}

std::vector<std::size_t> BitVec::ones() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t i = find_first(); i < n_; i = find_next(i)) out.push_back(i);
  return out;
}

std::string BitVec::to_string() const {
  std::string s(n_, '0');
  for (std::size_t i = 0; i < n_; ++i)
    if (test(i)) s[i] = '1';
  return s;
}

std::size_t BitVec::hash() const noexcept {
  std::uint64_t h = 1469598103934665603ull;
  h ^= n_;
  h *= 1099511628211ull;
  for (auto w : w_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

void BitVec::trim() noexcept {
  const std::size_t extra = n_ & 63;
  if (extra != 0 && !w_.empty())
    w_.back() &= (std::uint64_t{1} << extra) - 1;
}

}  // namespace ebmf
