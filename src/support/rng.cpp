#include "support/rng.h"

#include <algorithm>
#include <numeric>

namespace ebmf {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  EBMF_ASSERT(bound > 0);
  // Lemire: multiply a 64-bit draw by bound, take high word; reject the
  // short low-word region to remove bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  EBMF_ASSERT(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  shuffle(p);
  return p;
}

std::vector<std::size_t> Rng::sample(std::size_t n, std::size_t k) {
  EBMF_EXPECTS(k <= n);
  // Floyd's algorithm would avoid the O(n) permutation, but n here is a
  // matrix dimension (tiny); keep it simple and exact.
  auto p = permutation(n);
  p.resize(k);
  std::sort(p.begin(), p.end());
  return p;
}

}  // namespace ebmf
