#pragma once
/// \file bitvec.h
/// \brief A dynamic fixed-length bit vector tuned for the set operations the
/// EBMF algorithms live on: subset tests, disjointness tests, in-place
/// union/difference, and popcounts.
///
/// `std::vector<bool>` lacks word-level access and `std::bitset` is
/// compile-time sized; row-packing (Alg. 2 of the paper) spends nearly all of
/// its time in `contains` / `operator-=` on rows, so BitVec stores bits in
/// little-endian 64-bit words and exposes those operations directly.

#include <cstdint>
#include <string>
#include <vector>

#include "support/contracts.h"

namespace ebmf {

/// Fixed-length vector of bits with word-parallel set operations.
///
/// Invariants: `size()` is fixed at construction (no resize); all bits above
/// `size()` in the last storage word are zero (maintained by every mutator so
/// popcount/equality never see garbage).
class BitVec {
 public:
  /// An empty bit vector of length zero.
  BitVec() = default;

  /// A bit vector of `n` bits, all zero.
  explicit BitVec(std::size_t n) : n_(n), w_((n + 63) / 64, 0) {}

  /// Build from a 0/1 string, e.g. BitVec::from_string("10110").
  /// Characters other than '0'/'1' are rejected.
  static BitVec from_string(const std::string& s);

  /// Build an `n`-bit vector directly from little-endian storage words (the
  /// layout words() exposes). Bits above `n` in the last word are cleared,
  /// so untrusted wire input cannot violate the trim invariant; missing
  /// words read as zero, surplus words are ignored.
  static BitVec from_words(std::size_t n,
                           const std::vector<std::uint64_t>& words) {
    BitVec v(n);
    const std::size_t limit = std::min(words.size(), v.w_.size());
    for (std::size_t i = 0; i < limit; ++i) v.w_[i] = words[i];
    v.trim();
    return v;
  }

  /// Number of bits.
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// True when size() == 0.
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  /// Read bit `i`. Precondition: i < size().
  [[nodiscard]] bool test(std::size_t i) const {
    EBMF_ASSERT(i < n_);
    return (w_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Alias for test() enabling `v[i]` reads.
  [[nodiscard]] bool operator[](std::size_t i) const { return test(i); }

  /// Set bit `i` to `value`. Precondition: i < size().
  void set(std::size_t i, bool value = true) {
    EBMF_ASSERT(i < n_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (value)
      w_[i >> 6] |= mask;
    else
      w_[i >> 6] &= ~mask;
  }

  /// Clear bit `i`. Precondition: i < size().
  void reset(std::size_t i) { set(i, false); }

  /// Set all bits to zero.
  void clear() noexcept {
    for (auto& w : w_) w = 0;
  }

  /// Set all bits to one.
  void fill();

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// True if no bit is set.
  [[nodiscard]] bool none() const noexcept;

  /// True if at least one bit is set.
  [[nodiscard]] bool any() const noexcept { return !none(); }

  /// Index of the lowest set bit, or size() if none.
  [[nodiscard]] std::size_t find_first() const noexcept;

  /// Index of the lowest set bit strictly above `i`, or size() if none.
  [[nodiscard]] std::size_t find_next(std::size_t i) const noexcept;

  /// True if every set bit of *this is also set in `other`
  /// (i.e. *this ⊆ other). Precondition: same size.
  [[nodiscard]] bool subset_of(const BitVec& other) const;

  /// True if *this and `other` share no set bit. Precondition: same size.
  [[nodiscard]] bool disjoint(const BitVec& other) const;

  /// True if *this and `other` share at least one set bit.
  [[nodiscard]] bool intersects(const BitVec& other) const {
    return !disjoint(other);
  }

  /// In-place union. Precondition: same size.
  BitVec& operator|=(const BitVec& other);
  /// In-place intersection. Precondition: same size.
  BitVec& operator&=(const BitVec& other);
  /// In-place symmetric difference. Precondition: same size.
  BitVec& operator^=(const BitVec& other);
  /// In-place set difference (*this AND NOT other). Precondition: same size.
  BitVec& operator-=(const BitVec& other);

  /// Set union.
  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  /// Set intersection.
  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  /// Symmetric difference.
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }
  /// Set difference.
  friend BitVec operator-(BitVec a, const BitVec& b) { return a -= b; }

  /// Exact bitwise equality (sizes must match for equality to hold).
  friend bool operator==(const BitVec& a, const BitVec& b) noexcept {
    return a.n_ == b.n_ && a.w_ == b.w_;
  }

  /// Lexicographic-by-word ordering; total order usable as map key.
  friend bool operator<(const BitVec& a, const BitVec& b) noexcept {
    if (a.n_ != b.n_) return a.n_ < b.n_;
    return a.w_ < b.w_;
  }

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> ones() const;

  /// Render as a 0/1 string, index 0 first.
  [[nodiscard]] std::string to_string() const;

  /// 64-bit hash (FNV-1a over words) for use in unordered containers.
  [[nodiscard]] std::size_t hash() const noexcept;

  /// Direct read access to the storage words (little-endian bit order).
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return w_;
  }

 private:
  void trim() noexcept;  // zero the bits above n_ in the last word

  std::size_t n_ = 0;
  std::vector<std::uint64_t> w_;
};

/// Hash functor so BitVec can key unordered_map / unordered_set.
struct BitVecHash {
  std::size_t operator()(const BitVec& v) const noexcept { return v.hash(); }
};

}  // namespace ebmf
