// Backend connection pool: pipelined submits, binary-frame upgrade
// negotiation, id-matched reply dispatch, break detection, and
// exponential-backoff reconnect.

#include "router/pool.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "io/binary_io.h"
#include "net/frame.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "service/net.h"
#include "support/fault.h"
#include "support/rng.h"

namespace ebmf::router {

namespace net = service::net;
namespace rnet = ebmf::net;

using Clock = std::chrono::steady_clock;

PendingReply::Outcome PendingReply::wait(double seconds) {
  std::unique_lock<std::mutex> lock(mutex);
  const auto ready = [&] { return done || broken; };
  if (seconds <= 0) {
    cv.wait(lock, ready);
  } else if (!cv.wait_for(lock, std::chrono::duration<double>(seconds),
                          ready)) {
    return Outcome::TimedOut;
  }
  return broken ? Outcome::Broken : Outcome::Reply;
}

bool PendingReply::has_reply() {
  std::lock_guard<std::mutex> lock(mutex);
  return done && !broken;
}

void PendingReply::reset() {
  std::lock_guard<std::mutex> lock(mutex);
  done = false;
  broken = false;
  frame_type = 0;
  line.clear();
}

namespace {

/// One persistent socket to the backend plus its reader thread. Conn
/// objects are created once and recycled through reconnects (stable
/// addresses: the vector holds unique_ptrs and never shrinks).
struct Conn {
  int fd = -1;
  std::atomic<bool> open{false};
  bool binary = false;  ///< Speaks frames (set before `open`, fixed after).
  /// Reader's last store before exiting; maintain() joins on it.
  std::atomic<bool> reader_done{true};
  std::thread reader;
  std::mutex write_mutex;
  std::mutex pending_mutex;
  std::unordered_map<std::uint64_t, PendingPtr> pending;
};

/// Negotiate the frame protocol on a fresh socket: send the upgrade line,
/// wait (bounded) for the JSON ack. 1 = upgraded, 0 = the backend declined
/// (an old build answering with an error keeps a perfectly good line
/// connection), -1 = the socket died or the window expired (caller closes
/// and backs off — a wedged negotiation must not be mistaken for a
/// decline).
int negotiate_upgrade(int fd) {
  if (!net::write_line(fd, "{\"op\":\"upgrade\"}")) return -1;
  timeval window{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &window, sizeof window);
  net::LineBuffer buffer;
  char chunk[512];
  std::string line;
  int result = -1;
  while (true) {
    if (buffer.pop(line)) {
      result = line.find("\"upgraded\":true") != std::string::npos ? 1 : 0;
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  timeval off{0, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &off, sizeof off);
  return result;
}

/// Send raw bytes (an already-encoded frame) fully, through the same
/// fault-injection seams write_line uses so the network drills exercise
/// the binary path too. False when the peer is gone.
bool send_raw(int fd, const std::string& bytes) {
  fault::maybe_delay();
  if (fault::should_drop_write()) {
    ::shutdown(fd, SHUT_RDWR);
    return false;
  }
  const std::size_t limit = fault::maybe_tear(bytes.size());
  std::size_t sent = 0;
  while (sent < limit) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, limit - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  if (limit < bytes.size()) {  // torn by the drill: kill the connection
    ::shutdown(fd, SHUT_RDWR);
    return false;
  }
  return true;
}

/// Complete one pending reply.
void complete_pending(Conn& conn, std::uint64_t id, std::uint8_t frame_type,
                      std::string&& body) {
  PendingPtr pending;
  {
    std::lock_guard<std::mutex> lock(conn.pending_mutex);
    const auto it = conn.pending.find(id);
    if (it == conn.pending.end()) return;  // late reply, forgotten
    pending = it->second;
    conn.pending.erase(it);
  }
  std::lock_guard<std::mutex> lock(pending->mutex);
  pending->frame_type = frame_type;
  pending->line = std::move(body);
  pending->done = true;
  pending->cv.notify_all();
}

}  // namespace

struct BackendPool::Impl {
  std::string host;
  std::uint16_t port;
  std::string endpoint_text;
  PoolOptions options;

  /// Structural lock: connection selection, reconnects, shutdown.
  mutable std::mutex mutex;
  std::vector<std::unique_ptr<Conn>> conns;
  std::size_t cursor = 0;
  std::atomic<bool> shutting_down{false};

  /// The pool's negotiated wire mode: -1 undecided (no connection has
  /// completed negotiation yet), 0 line-JSON, 1 binary frames. Fixed by
  /// the first decided negotiation (see the header comment).
  std::atomic<int> binary_mode{-1};

  double backoff_ms;
  Clock::time_point next_attempt = Clock::now();
  /// De-synchronizes reconnect schedules: without jitter every pool that
  /// lost the same router restart redials on the same exponential grid,
  /// and the stampede repeats at each doubling. Seeded per-instance.
  Rng jitter;

  std::atomic<std::uint64_t> stat_requests{0};
  std::atomic<std::uint64_t> stat_failures{0};

  explicit Impl(std::string h, std::uint16_t p, PoolOptions opt)
      : host(std::move(h)),
        port(p),
        endpoint_text(host + ":" + std::to_string(port)),
        options(opt),
        backoff_ms(opt.backoff_base_ms),
        jitter(std::hash<std::string>{}(endpoint_text) ^
               reinterpret_cast<std::uintptr_t>(this)) {
    if (options.connections == 0) options.connections = 1;
    if (!options.negotiate_binary) binary_mode.store(0);
    for (std::size_t i = 0; i < options.connections; ++i)
      conns.push_back(std::make_unique<Conn>());
  }

  /// Next reconnect delay: the current (capped) backoff spread over
  /// [0.5, 1.5)x so concurrent pools drift apart. Call under `mutex`;
  /// advances the exponential schedule.
  Clock::duration backoff_step() {
    const double delay_ms = backoff_ms * (0.5 + jitter.uniform01());
    backoff_ms = std::min(backoff_ms * 2.0, options.backoff_max_ms);
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(delay_ms));
  }

  /// Fail every reply pending on `conn` (the connection broke): waiting
  /// router threads wake with Broken and fail over.
  void break_pending(Conn& conn) {
    std::unordered_map<std::uint64_t, PendingPtr> orphans;
    {
      std::lock_guard<std::mutex> lock(conn.pending_mutex);
      orphans.swap(conn.pending);
    }
    for (auto& [id, pending] : orphans) {
      std::lock_guard<std::mutex> lock(pending->mutex);
      pending->broken = true;
      pending->cv.notify_all();
    }
  }

  /// Line-mode reader body: frame response lines, match ids, dispatch.
  void read_lines(Conn& conn) {
    net::LineBuffer buffer;
    char chunk[16384];
    const int fd = conn.fd;
    while (true) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::string line;
      while (buffer.pop(line)) {
        std::uint64_t id = 0;
        if (!net::strip_id_prefix(line, id)) continue;  // unmatched noise
        complete_pending(conn, id, 0, std::move(line));
      }
    }
  }

  /// Binary-mode reader body: decode frames, match ids, dispatch. Type-4
  /// JSON frames are unwrapped to the exact shape a line reply has
  /// (frame_type 0, id prefix stripped), so the router's non-solve paths
  /// never notice which protocol carried them; type-2/3 payloads pass
  /// through raw for io/binary_io.h. A malformed frame is terminal — the
  /// stream has lost sync, so the connection breaks and reconnects.
  void read_frames(Conn& conn) {
    // The bound mirrors the serve tier's default frame cap, not the
    // router's max_line_bytes: replies (reports + partitions) can outgrow
    // request lines.
    rnet::FrameBuffer frames(64u << 20);
    char chunk[16384];
    const int fd = conn.fd;
    bool dead = false;
    while (!dead) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      frames.append(chunk, static_cast<std::size_t>(n));
      rnet::Frame frame;
      rnet::FrameBuffer::Pop status;
      while ((status = frames.pop(&frame)) == rnet::FrameBuffer::Pop::Ok) {
        if (frame.type == rnet::kFrameJson) {
          std::uint64_t id = 0;
          if (!net::strip_id_prefix(frame.payload, id)) continue;
          complete_pending(conn, id, 0, std::move(frame.payload));
          continue;
        }
        const std::int64_t id = io::binary_salvage_id(frame.payload);
        if (id < 0) continue;  // unmatched noise
        complete_pending(conn, static_cast<std::uint64_t>(id), frame.type,
                         std::move(frame.payload));
      }
      dead = status == rnet::FrameBuffer::Pop::Bad;
    }
  }

  /// The reader thread: run the mode-appropriate body, then fail all
  /// pending and schedule the reconnect when the socket breaks (or
  /// shutdown() wakes it).
  void reader_loop(Conn& conn) {
    if (conn.binary)
      read_frames(conn);
    else
      read_lines(conn);
    conn.open.store(false, std::memory_order_relaxed);
    break_pending(conn);
    if (!shutting_down.load(std::memory_order_relaxed)) {
      stat_failures.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter* const failures =
          obs::default_registry().counter("router.pool.failures");
      failures->add(1);
      std::lock_guard<std::mutex> lock(mutex);
      next_attempt = Clock::now() + backoff_step();
    }
    conn.reader_done.store(true, std::memory_order_release);
  }

  /// Pick a live connection round-robin; nullptr when the backend is down.
  Conn* pick_open() {
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t step = 0; step < conns.size(); ++step) {
      Conn& conn = *conns[(cursor + step) % conns.size()];
      if (conn.open.load(std::memory_order_relaxed)) {
        cursor = (cursor + step + 1) % conns.size();
        return &conn;
      }
    }
    return nullptr;
  }

  void maintain() {
    if (shutting_down.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(mutex);
    bool attempted = false;
    for (auto& conn_ptr : conns) {
      Conn& conn = *conn_ptr;
      if (conn.open.load(std::memory_order_relaxed)) continue;
      if (!conn.reader_done.load(std::memory_order_acquire)) continue;
      if (conn.reader.joinable()) conn.reader.join();
      if (conn.fd >= 0) {
        std::lock_guard<std::mutex> write_lock(conn.write_mutex);
        ::close(conn.fd);
        conn.fd = -1;
      }
      // One connect attempt per maintain() call, rate-limited by backoff.
      if (attempted || Clock::now() < next_attempt) continue;
      attempted = true;
      int fd = -1;
      try {
        fd = net::tcp_connect(host, port);
      } catch (const std::exception&) {
        next_attempt = Clock::now() + backoff_step();
        continue;
      }
      // Wire-mode negotiation. A pool already fixed at line mode (declined
      // once, or --no-binary) skips the round-trip; otherwise the fresh
      // socket negotiates and the first decided outcome becomes sticky.
      int wire = binary_mode.load(std::memory_order_relaxed);
      if (wire != 0) {
        const int negotiated = negotiate_upgrade(fd);
        if (negotiated < 0) {  // died or wedged mid-negotiation
          ::close(fd);
          next_attempt = Clock::now() + backoff_step();
          continue;
        }
        int undecided = -1;
        binary_mode.compare_exchange_strong(undecided, negotiated);
        wire = binary_mode.load(std::memory_order_relaxed);
        if (wire != negotiated) {
          // The backend at this endpoint now disagrees with the pool's
          // fixed framing (swapped for an incompatible build): refuse the
          // connection rather than let one pool speak two protocols.
          ::close(fd);
          next_attempt = Clock::now() + backoff_step();
          continue;
        }
      }
      backoff_ms = options.backoff_base_ms;  // healthy again
      conn.binary = wire == 1;
      {
        // The fd swap happens under the write lock: a submitter that
        // picked this conn just before the break re-checks `open` under
        // the same lock and can never write into (or shut down) a
        // recycled descriptor.
        std::lock_guard<std::mutex> write_lock(conn.write_mutex);
        conn.fd = fd;
        conn.reader_done.store(false, std::memory_order_relaxed);
        conn.open.store(true, std::memory_order_release);
      }
      obs::emit_event(obs::EventCode::PoolReconnect,
                      std::hash<std::string>{}(endpoint_text),
                      stat_failures.load(std::memory_order_relaxed));
      conn.reader = std::thread([this, &conn]() { reader_loop(conn); });
    }
  }

  void shutdown() {
    if (shutting_down.exchange(true)) return;
    {
      std::lock_guard<std::mutex> lock(mutex);
      for (auto& conn : conns)
        if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
    for (auto& conn : conns) {
      if (conn->reader.joinable()) conn->reader.join();
      if (conn->fd >= 0) {
        ::close(conn->fd);
        conn->fd = -1;
      }
      conn->open.store(false, std::memory_order_relaxed);
    }
  }
};

BackendPool::BackendPool(std::string host, std::uint16_t port,
                         PoolOptions options)
    : impl_(std::make_unique<Impl>(std::move(host), port, options)) {}

BackendPool::~BackendPool() { shutdown(); }

const std::string& BackendPool::endpoint() const noexcept {
  return impl_->endpoint_text;
}

bool BackendPool::alive() const noexcept {
  for (const auto& conn : impl_->conns)
    if (conn->open.load(std::memory_order_relaxed)) return true;
  return false;
}

bool BackendPool::binary() const noexcept {
  return impl_->binary_mode.load(std::memory_order_relaxed) == 1;
}

bool BackendPool::submit(std::uint64_t id, const std::string& payload,
                         bool framed, const PendingPtr& pending) {
  Conn* conn = impl_->pick_open();
  if (conn == nullptr) {
    // Opportunistic revival: a failed submit is exactly when the health
    // cadence is too slow to matter (the caller is about to fail over).
    impl_->maintain();
    conn = impl_->pick_open();
    if (conn == nullptr) return false;
  }
  // A pre-encoded frame cannot be downgraded to a line; the router only
  // renders one when binary() said the pool speaks frames, so hitting this
  // means the pool flipped modes under the caller — fail over and re-render.
  if (framed && !conn->binary) return false;
  // Register before writing: a pipelined backend can answer before the
  // write call even returns.
  {
    std::lock_guard<std::mutex> lock(conn->pending_mutex);
    conn->pending[id] = pending;
  }
  bool sent = false;
  {
    // write_mutex also guards the fd lifecycle (maintain() swaps fds only
    // under it), so the re-check below cannot see a recycled descriptor
    // and the failure-path shutdown always hits the socket we wrote to.
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->open.load(std::memory_order_relaxed)) {
      if (framed)
        sent = send_raw(conn->fd, payload);
      else if (conn->binary)  // JSON over a frame stream: type-4 wrap
        sent = send_raw(conn->fd, rnet::encode_frame(rnet::kFrameJson,
                                                     payload));
      else
        sent = net::write_line(conn->fd, payload);
      // Wake the reader so the break is processed once, centrally.
      if (!sent) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  if (!sent) {
    // Withdraw the registration: the caller resubmits this PendingReply
    // elsewhere, and a stale break signal must not chase it.
    std::lock_guard<std::mutex> lock(conn->pending_mutex);
    conn->pending.erase(id);
    return false;
  }
  impl_->stat_requests.fetch_add(1, std::memory_order_relaxed);
  // Fleet-wide dispatch volume, aggregated across every pool instance
  // (per-backend breakdowns live in the stats verb's pool counters).
  static obs::Counter* const dispatches =
      obs::default_registry().counter("router.pool.dispatches");
  dispatches->add(1);
  return true;
}

void BackendPool::forget(std::uint64_t id) {
  for (auto& conn : impl_->conns) {
    std::lock_guard<std::mutex> lock(conn->pending_mutex);
    if (conn->pending.erase(id) > 0) return;
  }
}

void BackendPool::maintain() { impl_->maintain(); }

void BackendPool::shutdown() { impl_->shutdown(); }

PoolStats BackendPool::stats() const {
  PoolStats out;
  out.alive = alive();
  out.binary = binary();
  out.requests = impl_->stat_requests.load(std::memory_order_relaxed);
  out.failures = impl_->stat_failures.load(std::memory_order_relaxed);
  for (const auto& conn : impl_->conns) {
    std::lock_guard<std::mutex> lock(conn->pending_mutex);
    out.inflight += conn->pending.size();
  }
  return out;
}

}  // namespace ebmf::router
