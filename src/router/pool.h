#pragma once
/// \file pool.h
/// \brief Persistent, pipelined connections to one `ebmf serve` backend,
/// with id-matched replies, health state, and exponential-backoff
/// reconnect — the router's transport layer.
///
/// Every request line the router forwards carries a router-assigned
/// `"id"`; the backend echoes it as the first member of the response line.
/// A pool keeps a small set of long-lived connections to its backend, each
/// with a dedicated reader thread: submit() registers the id in the
/// connection's pending map and writes the line (many client threads
/// pipeline over one connection — the backend answers a connection in
/// request order, but the id match makes the pool indifferent to order).
/// The reader completes the matching PendingReply as each response
/// arrives.
///
/// Failure semantics: when a connection breaks (EOF, reset, write error),
/// every reply pending *on that connection* is failed immediately — the
/// waiting router threads fail over to the next backend in the HRW order —
/// and the pool goes into backoff. maintain() (called by the router's
/// health thread, and opportunistically by submit()) retries the connect
/// with exponential backoff; first success marks the backend alive and the
/// ring re-includes it for its own keys.
///
/// Binary fast path: each fresh connection negotiates the frame protocol
/// with `{"op":"upgrade"}` (bounded ack wait, JSON fallback — an old
/// backend that answers with an error keeps a perfectly good line
/// connection). The first negotiation fixes the pool's wire mode for its
/// lifetime, so every live connection speaks the same framing and the
/// router can render exactly one encoding per request: type-1 solve frames
/// on the hot path, JSON wrapped in type-4 frames for everything else
/// (admin verbs, puts, masked passthroughs). A later connection whose
/// negotiation disagrees (backend swapped for an incompatible build at the
/// same endpoint) is dropped and retried under backoff rather than
/// letting one pool speak two protocols.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace ebmf::router {

/// One awaited backend response. wait() blocks until the reply arrives,
/// the connection carrying it dies, or the timeout expires.
struct PendingReply {
  /// Outcome of one wait: the caller's next move.
  enum class Outcome {
    Reply,    ///< `line` holds the backend's response (id stripped).
    Broken,   ///< The connection died first — fail over and resubmit.
    TimedOut  ///< No reply within the window — treat as backend failure.
  };

  /// Block up to `seconds` (<= 0 waits forever).
  Outcome wait(double seconds);

  /// True when a reply landed (post-timeout double check: a response that
  /// raced the give-up must be served, not re-solved).
  bool has_reply();

  /// Re-arm for a resubmit after Broken/TimedOut.
  void reset();

  // Written by the pool reader under `mutex`.
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  bool broken = false;
  /// The reply: a JSON line with the id prefix stripped (frame_type 0 —
  /// line replies and type-4 JSON frames look identical here), or a raw
  /// type-2/3 frame payload the caller decodes with io/binary_io.h.
  std::uint8_t frame_type = 0;
  std::string line;
};

using PendingPtr = std::shared_ptr<PendingReply>;

/// Pool knobs (router options map 1:1; tests shrink the backoff).
struct PoolOptions {
  std::size_t connections = 1;     ///< Pipelined sockets to the backend.
  double backoff_base_ms = 50.0;   ///< First reconnect delay after a break.
  double backoff_max_ms = 2000.0;  ///< Backoff ceiling (doubling).
  /// Negotiate the binary frame protocol on fresh connections
  /// (`ebmf route --no-binary` turns it off fleet-wide).
  bool negotiate_binary = true;
};

/// Point-in-time pool counters.
struct PoolStats {
  bool alive = false;            ///< At least one live connection.
  bool binary = false;           ///< Connections speak the frame protocol.
  std::uint64_t requests = 0;    ///< Lines submitted.
  std::uint64_t failures = 0;    ///< Connection-level breaks observed.
  std::size_t inflight = 0;      ///< Replies currently pending.
};

/// Connections to one backend. Thread-safe: submit() may be called from
/// every router connection thread concurrently.
class BackendPool {
 public:
  BackendPool(std::string host, std::uint16_t port, PoolOptions options);
  ~BackendPool();

  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  /// "host:port" — the ring id and the telemetry name.
  [[nodiscard]] const std::string& endpoint() const noexcept;

  [[nodiscard]] bool alive() const noexcept;

  /// True once the pool's connections negotiated the binary frame
  /// protocol (sticky for the pool's lifetime — see the file comment).
  /// The router checks this to pick which request encoding to render.
  [[nodiscard]] bool binary() const noexcept;

  /// Register `pending` under `id` and write `payload` on a live
  /// connection. `framed` says what `payload` is: complete frame bytes
  /// (binary pools only — a frame cannot be downgraded to a line), or a
  /// JSON line the pool newline-terminates (and, on a binary connection,
  /// wraps in a type-4 frame). The payload must already carry the id.
  /// False when the backend is down right now — the caller fails over; no
  /// partial registration survives a failed submit.
  bool submit(std::uint64_t id, const std::string& payload, bool framed,
              const PendingPtr& pending);

  /// Drop a registration whose waiter gave up (timeout): a late reply for
  /// the id is then discarded instead of completing a dead slot.
  void forget(std::uint64_t id);

  /// Health step: join finished readers and, when down and past the
  /// backoff, attempt one reconnect. Called periodically and from a
  /// failed submit.
  void maintain();

  /// Close every connection (pending replies fail) and join the readers.
  void shutdown();

  [[nodiscard]] PoolStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ebmf::router
