// Rendezvous hashing: scoring and the per-key backend ranking.

#include "router/ring.h"

#include <algorithm>

namespace ebmf::router {

std::uint64_t fnv1a64(const std::string& bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hrw_score(std::uint64_t backend_seed,
                        std::uint64_t key) noexcept {
  // splitmix64 finalizer over the pair: avalanche on every input bit, so
  // per-key rankings are uncorrelated across backends.
  std::uint64_t z = backend_seed ^ (key + 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t RendezvousRing::add(const std::string& id) {
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].id == id) return i;
  nodes_.push_back(Node{id, fnv1a64(id)});
  return nodes_.size() - 1;
}

bool RendezvousRing::remove(const std::string& id) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].id == id) {
      nodes_.erase(nodes_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

std::size_t RendezvousRing::owner(std::uint64_t key) const {
  std::size_t best = 0;
  std::uint64_t best_score = hrw_score(nodes_[0].seed, key);
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const std::uint64_t score = hrw_score(nodes_[i].seed, key);
    if (score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

std::vector<std::size_t> RendezvousRing::ordered(std::uint64_t key) const {
  std::vector<std::pair<std::uint64_t, std::size_t>> scored;
  scored.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    scored.emplace_back(hrw_score(nodes_[i].seed, key), i);
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<std::size_t> order;
  order.reserve(scored.size());
  for (const auto& [score, index] : scored) order.push_back(index);
  return order;
}

}  // namespace ebmf::router
