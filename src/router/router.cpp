// The sharding front tier: client connections on the epoll reactor
// (net/reactor.h), local canonicalization + L1 cache, HRW dispatch over
// the backend pools (binary frames with the pre-canonicalized fast path
// when the pool negotiated the upgrade, line-JSON otherwise), in-order
// reply reassembly with failover, the cluster control plane
// (join/leave/heartbeat membership, epoch-stamped view swaps, hot-key
// replication), and the SIGTERM drain.

#include "router/router.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <ctime>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cluster/lease.h"
#include "cluster/membership.h"
#include "cluster/replica.h"
#include "cluster/view.h"
#include "core/partition.h"
#include "io/binary_io.h"
#include "io/json.h"
#include "io/request_io.h"
#include "net/frame.h"
#include "net/reactor.h"
#include "obs/events.h"
#include "obs/federate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "router/pool.h"
#include "router/ring.h"
#include "service/canon.h"
#include "service/net.h"
#include "support/logrotate.h"

namespace ebmf::router {

namespace net = service::net;
namespace rnet = ebmf::net;

using net::error_json;
using net::write_line;

namespace {

/// Wrap one JSON reply line in the framing the triggering message used:
/// '\n'-terminated on a line connection, a type-4 JSON frame after the
/// upgrade.
std::string framed_json(rnet::WireMode mode, const std::string& line) {
  if (mode == rnet::WireMode::Line) return line + "\n";
  return rnet::encode_frame(rnet::kFrameJson, line);
}

/// One client message's journey through a batch: either resolved up front
/// (parse error, stats, membership verb, L1 hit, local zero-pattern
/// answer) or an in-flight backend exchange plus the context needed to
/// re-own the response.
struct RouteTask {
  bool skip = false;

  // -- resolved outcome --------------------------------------------------
  /// True once the reply is determined (resolved before dispatch, or
  /// finalized from a backend reply). Line/type-4 clients read `immediate`
  /// (the JSON reply text); binary-solve clients read `final_report` /
  /// `error_message` instead — the reply loop encodes the type-2/3 frame
  /// after the trace root closes, so the spans can ride the payload.
  bool resolved = false;
  std::string immediate;
  bool immediate_is_error = false;
  std::optional<engine::SolveReport> final_report;
  std::string error_message;
  bool admitted = false;

  // -- client framing ----------------------------------------------------
  rnet::WireMode mode = rnet::WireMode::Line;
  /// True when the request arrived as a type-1 solve frame: the reply is a
  /// type-2/3 frame rather than (possibly type-4-wrapped) JSON text.
  bool binary_solve = false;

  // -- forwarding state --------------------------------------------------
  bool forwarded = false;
  bool passthrough = false;  ///< Masked request: reply forwarded verbatim.
  /// The backend's `"events"` flight-recorder splice (raw JSON array),
  /// preserved across the lift's re-render of the reply.
  std::string backend_events;
  std::uint64_t route_key = 0;
  std::uint64_t router_id = 0;
  /// The forward request, rendered lazily per pool wire mode: `backend_line`
  /// (JSON) for line pools and every non-solve payload, `backend_frame` (a
  /// complete type-1 frame carrying the canonical key, so the backend skips
  /// canonicalization entirely) for binary pools. A failover between pools
  /// of different modes just renders the other encoding once.
  io::WireRequest forward;
  std::string backend_line;
  std::string backend_frame;
  /// Frame type of the awaited backend reply (0 = JSON text).
  std::uint8_t reply_frame_type = 0;
  PendingPtr pending;
  /// The view this request routes on: taken once at dispatch and held for
  /// the whole exchange (failovers included), so an epoch swap mid-flight
  /// never invalidates the walk.
  std::shared_ptr<const cluster::ClusterView> view;
  std::vector<std::string> preference;  ///< HRW failover order (endpoints).
  std::size_t preference_cursor = 0;    ///< Index serving the request.
  std::size_t failovers = 0;

  // -- client context ----------------------------------------------------
  std::int64_t client_id = -1;
  std::string label;
  bool include_partition = false;

  // -- canonical context (dense path) ------------------------------------
  bool canonical_mode = false;
  canon::Canonical canonical;
  canon::CacheKey l1_key;
  std::string strategy;
  BinaryMatrix original;  ///< For re-validating the lifted certificate.

  // -- hot-key replication -----------------------------------------------
  bool promoted = false;      ///< The key is in the replicated set.
  bool promoted_now = false;  ///< This request crossed the threshold.
  std::uint64_t hot_hits = 0;

  // -- watch relay -------------------------------------------------------
  /// `{"op":"watch"}`: the reply loop relays the named in-flight solve's
  /// progress stream from its serving backend instead of answering inline.
  bool watch = false;

  // -- tracing -----------------------------------------------------------
  /// Set when the request carries a trace context (or --trace assigns one):
  /// the span recorder, this request's "router.request" root span id, the
  /// client's span the root parents under, and the pre-allocated id of the
  /// "router.dispatch" span — allocated at prepare time because the
  /// forwarded line must name it as the backend's parent before the
  /// dispatch interval is known.
  obs::TracePtr trace;
  std::uint64_t root_span = 0;
  std::uint64_t remote_parent = 0;
  std::uint64_t dispatch_span = 0;
  std::uint64_t dispatch_start_us = 0;
};

/// True when a reply line (with or without an id prefix) is a protocol
/// error object.
bool is_error_reply(std::string line) {
  std::uint64_t id = 0;
  net::strip_id_prefix(line, id);
  return line.rfind("{\"error\"", 0) == 0;
}

}  // namespace

struct Router::Impl {
  explicit Impl(RouterOptions opt)
      : options(std::move(opt)),
        membership(std::chrono::duration_cast<cluster::Clock::duration>(
            std::chrono::duration<double, std::milli>(
                options.grace_ms > 0 ? options.grace_ms
                                     : 4.0 * options.heartbeat_ms))),
        hot_keys(cluster::HotKeyTracker::Options{
            options.replicas > 1 ? options.promote_after : 0, 65536}) {
    if (options.max_batch == 0) options.max_batch = 1;
    if (options.replicas == 0) options.replicas = 1;
    if (options.l1_mb > 0)
      l1 = cache::ResultCache::with_capacity_mb(options.l1_mb);
    if (!options.trace_file.empty()) {
      std::string error;
      if (!traces.set_file(options.trace_file, &error))
        std::fprintf(stderr, "trace-file: %s\n", error.c_str());
    }
    if (!options.slow_log.empty()) {
      std::string error;
      if (!slow_file.open(options.slow_log, &error))
        std::fprintf(stderr, "slow-log: %s, logging to stderr\n",
                     error.c_str());
    }
  }

  RouterOptions options;
  std::shared_ptr<cache::ResultCache> l1;

  /// Completed traces this router assembled (op:trace/op:traces): its own
  /// spans plus the backend spans folded out of each reply.
  obs::TraceStore traces{128};
  /// Slow-request sink (--slow-log, size-rotated); stderr when closed and
  /// --slow-ms is on.
  RotatingFile slow_file;
  std::mutex slow_mutex;

  /// Where each id-carrying in-flight solve currently lives: the client's
  /// id → (serving backend endpoint, the router-assigned forwarded id).
  /// `{"op":"watch","id":N}` resolves N here and relays the stream from
  /// that backend; failovers re-point the entry mid-flight.
  struct WatchRoute {
    std::string endpoint;
    std::uint64_t router_id = 0;
  };
  mutable std::mutex watch_mutex;
  std::map<std::int64_t, WatchRoute> watch_routes;

  // Registry series, resolved once (obs/metrics.h).
  obs::Histogram* obs_request =
      obs::default_registry().histogram("router.request.micros");
  obs::Counter* obs_requests =
      obs::default_registry().counter("router.requests");
  obs::Counter* obs_errors = obs::default_registry().counter("router.errors");
  obs::Counter* obs_rejected =
      obs::default_registry().counter("router.rejected");
  obs::Counter* obs_l1_hits =
      obs::default_registry().counter("router.l1_hits");
  obs::Counter* obs_failovers =
      obs::default_registry().counter("router.failovers");
  obs::Gauge* obs_inflight = obs::default_registry().gauge("router.inflight");

  // -- cluster state -----------------------------------------------------
  // `cluster_mutex` serializes membership mutation + view publication (so
  // epochs reach the view cell in order); the request path only reads
  // `views.current()` and copies pool pointers out of `pools`.
  cluster::Membership membership;
  cluster::ViewHolder views;
  cluster::HotKeyTracker hot_keys;
  std::mutex cluster_mutex;
  mutable std::mutex pools_mutex;
  std::unordered_map<std::string, std::shared_ptr<BackendPool>> pools;

  // -- router fleet (leader lease + peer sync) ---------------------------
  /// Our advertised endpoint (lease-bid identity / redirect target);
  /// resolved in start() once the listener's port is known.
  std::string self_endpoint;
  /// Created in start() when --peers names a fleet; null = standalone
  /// (this router implicitly owns every write). Never reassigned after
  /// start, so connection threads read it without a lock.
  std::unique_ptr<cluster::LeaderLease> lease;
  std::thread sync_thread;

  /// The I/O tier. Created in start(); shutdown (not destroyed) in stop(),
  /// so port() stays answerable after a drain.
  std::unique_ptr<rnet::ReactorServer> reactor;
  std::atomic<bool> running{false};
  std::atomic<bool> stopping{false};

  std::thread health_thread;

  /// One watch relay = one tracked thread streaming a backend's progress
  /// frames through conn->try_send (never occupying a reactor worker for
  /// the lifetime of someone else's solve). Finished threads are reaped on
  /// the next watch; stop() joins the rest.
  struct WatchThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex watch_threads_mutex;
  std::vector<WatchThread> watch_threads;

  std::atomic<std::uint64_t> next_id{1};
  std::atomic<std::size_t> inflight{0};
  std::atomic<std::uint64_t> stat_connections{0};
  std::atomic<std::uint64_t> stat_requests{0};
  std::atomic<std::uint64_t> stat_errors{0};
  std::atomic<std::uint64_t> stat_rejected{0};
  std::atomic<std::uint64_t> stat_l1_hits{0};
  std::atomic<std::uint64_t> stat_failovers{0};
  std::atomic<std::uint64_t> stat_joins{0};
  std::atomic<std::uint64_t> stat_leaves{0};
  std::atomic<std::uint64_t> stat_evictions{0};
  std::atomic<std::uint64_t> stat_promotions{0};
  std::atomic<std::uint64_t> stat_replica_hits{0};
  std::atomic<std::uint64_t> stat_replica_puts{0};
  std::atomic<std::uint64_t> stat_lease_acquires{0};
  std::atomic<std::uint64_t> stat_lease_renewals{0};
  std::atomic<std::uint64_t> stat_redirects{0};
  std::atomic<std::uint64_t> stat_forwards{0};
  std::atomic<std::uint64_t> stat_syncs_sent{0};
  std::atomic<std::uint64_t> stat_syncs_applied{0};

  obs::Counter* obs_lease_acquired =
      obs::default_registry().counter("router.lease.acquired");
  obs::Counter* obs_lease_renewed =
      obs::default_registry().counter("router.lease.renewed");
  obs::Counter* obs_lease_lost =
      obs::default_registry().counter("router.lease.lost");
  obs::Counter* obs_redirects =
      obs::default_registry().counter("router.redirects");
  obs::Counter* obs_forwards =
      obs::default_registry().counter("router.forwards");
  obs::Counter* obs_syncs =
      obs::default_registry().counter("router.peer.syncs");

  bool try_admit() {
    const std::size_t limit = options.max_inflight;
    const std::size_t current =
        inflight.fetch_add(1, std::memory_order_relaxed);
    if (limit != 0 && current >= limit) {
      inflight.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    obs_inflight->add(1);
    return true;
  }

  void release_admitted(std::size_t count) {
    if (count > 0) {
      inflight.fetch_sub(count, std::memory_order_relaxed);
      obs_inflight->add(-static_cast<std::int64_t>(count));
    }
  }

  /// One backend row of a stats report: pool handle + membership flavor.
  struct BackendSnapshot {
    std::string endpoint;
    std::shared_ptr<BackendPool> pool;
    bool is_static = false;
  };

  std::shared_ptr<BackendPool> pool_for(const std::string& endpoint);
  std::shared_ptr<BackendPool> ensure_pool(const std::string& endpoint);
  std::shared_ptr<BackendPool> detach_pool(const std::string& endpoint);
  std::vector<BackendSnapshot> backend_snapshot() const;
  void publish_view();
  std::string handle_membership(const io::WireRequest& wire);
  bool holds_write_authority() const;
  std::string forward_or_redirect(const io::WireRequest& wire);
  std::string handle_peer(const io::WireRequest& wire);
  std::string build_sync_line() const;
  void observe_peer_reply(const std::string& line);
  std::optional<std::string> peer_call(const std::string& endpoint,
                                       const std::string& line);
  void sync_loop();
  std::string stats_json(std::int64_t id) const;
  std::string fleet_metrics_json(std::int64_t id);
  void log_slow(const RouteTask& task, double elapsed_ms,
                const std::string& trace_hex);
  void register_watch(const RouteTask& task);
  void unregister_watch(const RouteTask& task);
  void handle_watch(const rnet::ConnPtr& conn, std::int64_t id,
                    rnet::WireMode mode);
  void watch_relay(const rnet::ConnPtr& conn, std::int64_t id,
                   rnet::WireMode mode);
  void reap_watch_threads(bool join_all);
  void prepare_task(const rnet::Message& message, RouteTask& task);
  bool dispatch(RouteTask& task);
  const std::string& backend_payload(RouteTask& task, bool framed);
  std::string await_reply(RouteTask& task);
  void replicate(RouteTask& task, const engine::SolveReport& report);
  void finalize_reply(RouteTask& task, const std::string& raw);
  void resolve_json(RouteTask& task, std::string reply, bool is_error);
  void resolve_error(RouteTask& task, const std::string& message);
  void resolve_report(RouteTask& task, engine::SolveReport report,
                      const char* source);
  std::string render_report_core(RouteTask& task, engine::SolveReport& report,
                                 const char* source);
  void process_batch(const rnet::ConnPtr& conn,
                     std::vector<rnet::Message> messages);
  void health_loop();
};

std::shared_ptr<BackendPool> Router::Impl::pool_for(
    const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(pools_mutex);
  const auto it = pools.find(endpoint);
  return it == pools.end() ? nullptr : it->second;
}

/// The pool for `endpoint`, created on first use (join path). The caller
/// validates the endpoint; creation never throws past parse.
std::shared_ptr<BackendPool> Router::Impl::ensure_pool(
    const std::string& endpoint) {
  {
    std::lock_guard<std::mutex> lock(pools_mutex);
    const auto it = pools.find(endpoint);
    if (it != pools.end()) return it->second;
  }
  std::string host;
  std::uint16_t port = 0;
  if (!net::parse_endpoint(endpoint, host, port)) return nullptr;
  PoolOptions pool_options;
  pool_options.connections = options.pool_connections;
  pool_options.backoff_base_ms = options.backoff_base_ms;
  pool_options.backoff_max_ms = options.backoff_max_ms;
  auto pool = std::make_shared<BackendPool>(host, port, pool_options);
  std::lock_guard<std::mutex> lock(pools_mutex);
  // Lost a creation race: keep the incumbent (ours is dropped unopened).
  auto it = pools.find(endpoint);
  if (it == pools.end()) it = pools.emplace(endpoint, std::move(pool)).first;
  return it->second;
}

/// Remove `endpoint`'s pool from the routing set and hand it back. The
/// caller shuts it down *outside* the locks: in-flight replies then fail
/// fast and their owners re-walk the (already-republished) view.
std::shared_ptr<BackendPool> Router::Impl::detach_pool(
    const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(pools_mutex);
  const auto it = pools.find(endpoint);
  if (it == pools.end()) return nullptr;
  std::shared_ptr<BackendPool> pool = std::move(it->second);
  pools.erase(it);
  return pool;
}

/// The endpoint-sorted backend set for stats reporting (stats verb and
/// Router::stats() share it). A pool with no membership entry is
/// mid-removal and reported as announced.
std::vector<Router::Impl::BackendSnapshot> Router::Impl::backend_snapshot()
    const {
  std::unordered_map<std::string, bool> is_static;
  for (const cluster::Member& member : membership.members())
    is_static[member.endpoint] = member.is_static;
  std::vector<BackendSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(pools_mutex);
    out.reserve(pools.size());
    for (const auto& [endpoint, pool] : pools)
      out.push_back(BackendSnapshot{endpoint, pool, false});
  }
  std::sort(out.begin(), out.end(),
            [](const BackendSnapshot& a, const BackendSnapshot& b) {
              return a.endpoint < b.endpoint;
            });
  for (BackendSnapshot& backend : out) {
    const auto it = is_static.find(backend.endpoint);
    backend.is_static = it != is_static.end() && it->second;
  }
  return out;
}

/// Rebuild the routing view from the current member set and swap it in.
/// Callers hold `cluster_mutex`, so concurrent membership changes publish
/// their epochs in order.
void Router::Impl::publish_view() {
  const std::vector<cluster::Member> members = membership.members();
  std::vector<std::string> endpoints;
  endpoints.reserve(members.size());
  for (const cluster::Member& member : members)
    endpoints.push_back(member.endpoint);
  views.publish(cluster::ClusterView::make(membership.epoch(), endpoints));
}

/// True when this router may apply cluster writes: standalone, or holding
/// a valid leader lease.
bool Router::Impl::holds_write_authority() const {
  return lease == nullptr || lease->status().held;
}

/// The join/leave/heartbeat control plane, answered inline on the client
/// connection thread (membership changes are rare next to solves).
std::string Router::Impl::handle_membership(const io::WireRequest& wire) {
  if (!options.dynamic)
    return error_json(
        "membership verbs need a dynamic router (ebmf route --dynamic)", "",
        wire.id);
  std::string host;
  std::uint16_t port = 0;
  if (!net::parse_endpoint(wire.endpoint, host, port))
    return error_json("bad endpoint '" + wire.endpoint + "' (want host:port)",
                      "", wire.id);
  // Fleet mode: the member table has one writer — the leaseholder. A
  // heartbeat is a liveness refresh, not a table write, so every router
  // applies those locally and a follower's replicated view stays live
  // even while a new lease is being won.
  if (wire.op != io::WireOp::Heartbeat && !holds_write_authority())
    return forward_or_redirect(wire);
  const std::string endpoint = host + ":" + std::to_string(port);
  std::ostringstream out;
  out << "{";
  if (wire.id >= 0) out << "\"id\":" << wire.id << ",";

  if (wire.op == io::WireOp::Heartbeat) {
    // No lock needed: a heartbeat never changes the member set.
    const cluster::MembershipUpdate update = membership.heartbeat(endpoint);
    if (update.known)
      out << "\"ok\":true,\"epoch\":" << update.epoch << "}";
    else  // evicted (or never joined): the backend must announce again
      out << "\"ok\":false,\"rejoin\":true,\"epoch\":" << update.epoch << "}";
    return out.str();
  }

  if (wire.op == io::WireOp::Join) {
    cluster::MembershipUpdate update;
    {
      std::lock_guard<std::mutex> lock(cluster_mutex);
      update = membership.join(endpoint);
      ensure_pool(endpoint);
      if (update.changed) publish_view();
    }
    if (update.changed) stat_joins.fetch_add(1, std::memory_order_relaxed);
    // Opportunistic connect outside the cluster lock — the first requests
    // for this shard should not eat a health-cadence delay.
    if (const auto pool = pool_for(endpoint)) pool->maintain();
    out << "\"joined\":true,\"epoch\":" << update.epoch << "}";
    return out.str();
  }

  // Leave: publish the shrunken view first, then break the pool — its
  // in-flight replies fail over against a view that no longer lists it.
  std::shared_ptr<BackendPool> detached;
  cluster::MembershipUpdate update;
  {
    std::lock_guard<std::mutex> lock(cluster_mutex);
    // Static members are the operator's command line, not the wire's to
    // retract: a misdirected (or spoofed) leave would unroute a configured
    // shard until restart, since static members never announce/re-join.
    for (const cluster::Member& member : membership.members()) {
      if (member.endpoint == endpoint && member.is_static)
        return error_json("cannot leave static backend '" + endpoint +
                              "' (configured on the router command line)",
                          "", wire.id);
    }
    update = membership.leave(endpoint);
    if (update.changed) {
      publish_view();
      detached = detach_pool(endpoint);
    }
  }
  if (update.changed) stat_leaves.fetch_add(1, std::memory_order_relaxed);
  if (detached) detached->shutdown();
  out << "\"left\":" << (update.changed ? "true" : "false")
      << ",\"epoch\":" << update.epoch << "}";
  return out.str();
}

/// One blocking request/reply exchange with a fleet peer (hello, claim,
/// sync, or a forwarded write). A fresh short-lived dial per exchange:
/// peer traffic is a few small lines per sync interval, and dialing
/// through net::tcp_connect keeps the fault-injection layer in this path
/// too. nullopt means "peer unreachable right now".
std::optional<std::string> Router::Impl::peer_call(const std::string& endpoint,
                                                   const std::string& line) {
  std::string host;
  std::uint16_t port = 0;
  if (!net::parse_endpoint(endpoint, host, port)) return std::nullopt;
  int fd = -1;
  try {
    fd = net::tcp_connect(host, port);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  timeval timeout{2, 0};  // a stuck peer must not wedge the caller
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
  std::optional<std::string> reply;
  if (net::write_line(fd, line)) {
    net::LineBuffer buffer;
    char chunk[8192];
    std::string first;
    while (true) {
      if (buffer.pop(first)) {
        reply = std::move(first);
        break;
      }
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return reply;
}

/// A membership write arrived while we are a follower: proxy it to the
/// leaseholder so the client sees the authoritative answer, or — when the
/// leaseholder is unknown or unreachable — answer with an epoch-stamped
/// `{"redirect":...}` the client chases itself.
std::string Router::Impl::forward_or_redirect(const io::WireRequest& wire) {
  const cluster::LeaseStatus status = lease->status();
  if (status.valid && status.holder != self_endpoint) {
    io::WireRequest forward = wire;
    forward.id = -1;  // the proxy leg has its own correlation space
    if (std::optional<std::string> reply =
            peer_call(status.holder, io::wire_request_json(forward))) {
      stat_forwards.fetch_add(1, std::memory_order_relaxed);
      obs_forwards->add(1);
      return net::with_id_prefix(*reply, wire.id);
    }
  }
  stat_redirects.fetch_add(1, std::memory_order_relaxed);
  obs_redirects->add(1);
  std::ostringstream out;
  out << "{";
  if (wire.id >= 0) out << "\"id\":" << wire.id << ",";
  if (status.holder.empty() || status.holder == self_endpoint) {
    // Nothing to point at: the last lease we granted was our own (now
    // expired) or none exists yet. The client backs off and retries its
    // address list; by then someone has won the next term.
    out << "\"error\":\"no leaseholder (election in progress)\",\"epoch\":"
        << membership.epoch() << ",\"term\":" << status.term << "}";
    return out.str();
  }
  out << "\"redirect\":\"" << io::json::escape(status.holder)
      << "\",\"epoch\":" << membership.epoch() << ",\"term\":" << status.term
      << "}";
  return out.str();
}

/// The fleet peer verbs (peer.hello / peer.lease / peer.sync), answered
/// inline on the connection thread like membership verbs.
std::string Router::Impl::handle_peer(const io::WireRequest& wire) {
  if (!lease)
    return error_json(
        "this router is standalone (start it with --peers to form a fleet)",
        "", wire.id);
  std::ostringstream out;
  out << "{";
  if (wire.id >= 0) out << "\"id\":" << wire.id << ",";

  if (wire.op == io::WireOp::PeerHello) {
    // Introduction/probe: report the lease as we know it. The caller folds
    // the reply through observe_report, so a rebooted router learns the
    // standing term before its first bid.
    const cluster::LeaseStatus status = lease->status();
    out << "\"ok\":true,\"endpoint\":\"" << io::json::escape(self_endpoint)
        << "\",\"term\":" << status.term << ",\"holder\":\""
        << io::json::escape(status.holder)
        << "\",\"epoch\":" << membership.epoch() << "}";
    return out.str();
  }

  if (wire.op == io::WireOp::PeerLease) {
    const bool was_held = lease->status().held;
    const cluster::LeaderLease::Grant grant =
        lease->observe_claim(wire.endpoint, wire.term);
    if (was_held && grant.granted && !grant.status.held)
      obs_lease_lost->add(1);  // deposed by a fresher claim
    out << "\"ok\":true,\"granted\":" << (grant.granted ? "true" : "false")
        << ",\"term\":" << grant.status.term << ",\"holder\":\""
        << io::json::escape(grant.status.holder) << "\"}";
    return out.str();
  }

  // peer.sync — the holder's replicated snapshot. It doubles as a lease
  // renewal: a snapshot we would not grant a claim for is from a stale
  // leader and must be refused, or a deposed leader could roll the
  // member table back.
  const cluster::LeaderLease::Grant grant =
      lease->observe_claim(wire.endpoint, wire.term);
  const bool from_holder =
      grant.granted && grant.status.holder == wire.endpoint;
  bool applied = false;
  if (from_holder && wire.endpoint != self_endpoint) {
    std::vector<cluster::Member> snapshot;
    snapshot.reserve(wire.peer_members.size());
    std::unordered_set<std::string> keep;
    for (const io::WirePeerMember& member : wire.peer_members) {
      cluster::Member converted;
      converted.endpoint = member.endpoint;
      converted.is_static = member.is_static;
      keep.insert(member.endpoint);
      snapshot.push_back(std::move(converted));
    }
    std::vector<std::shared_ptr<BackendPool>> dropped;
    {
      std::lock_guard<std::mutex> lock(cluster_mutex);
      applied = membership.adopt(snapshot, wire.peer_epoch);
      if (applied) {
        // Reconcile pools with the adopted set: new members get pools
        // (dialed lazily), vanished ones lose theirs.
        for (const cluster::Member& member : membership.members())
          ensure_pool(member.endpoint);
        std::vector<std::string> extra;
        {
          std::lock_guard<std::mutex> pools_lock(pools_mutex);
          for (const auto& [endpoint, pool] : pools)
            if (keep.count(endpoint) == 0) extra.push_back(endpoint);
        }
        for (const std::string& endpoint : extra)
          if (auto pool = detach_pool(endpoint))
            dropped.push_back(std::move(pool));
        publish_view();
      }
    }
    for (const auto& pool : dropped) pool->shutdown();
    // The promoted set rides every sync (it can grow without an epoch
    // bump). Adoption seeds counts at the threshold, so a takeover serves
    // these keys warm without a re-promotion burst.
    hot_keys.adopt_promoted(wire.promoted_keys);
    stat_syncs_applied.fetch_add(1, std::memory_order_relaxed);
  }
  out << "\"ok\":true,\"applied\":" << (applied ? "true" : "false")
      << ",\"term\":" << grant.status.term << ",\"holder\":\""
      << io::json::escape(grant.status.holder)
      << "\",\"epoch\":" << membership.epoch() << "}";
  return out.str();
}

/// Render this router's replicated state as one peer.sync line. The whole
/// state is small (member table + epoch + promoted keys), so each "delta"
/// is simply the current snapshot — idempotent to apply, trivially
/// convergent, and a fresh follower needs no separate bootstrap path.
std::string Router::Impl::build_sync_line() const {
  io::WireRequest sync;
  sync.op = io::WireOp::PeerSync;
  sync.endpoint = self_endpoint;
  sync.term = lease->status().term;
  sync.peer_epoch = membership.epoch();
  for (const cluster::Member& member : membership.members()) {
    io::WirePeerMember entry;
    entry.endpoint = member.endpoint;
    entry.is_static = member.is_static;
    sync.peer_members.push_back(std::move(entry));
  }
  sync.promoted_keys = hot_keys.promoted_keys();
  return io::wire_request_json(sync);
}

/// Fold the lease view a peer's reply reported into our arbiter (how a
/// bidding router discovers it lost, and a deposed leader finds out).
void Router::Impl::observe_peer_reply(const std::string& line) {
  try {
    const io::json::Value document = io::json::Value::parse(line);
    if (!document.is_object()) return;
    const io::json::Value* holder = document.find("holder");
    const io::json::Value* term = document.find("term");
    if (holder == nullptr || !holder->is_string() || term == nullptr ||
        !term->is_number() || term->as_number() < 0)
      return;
    lease->observe_report(holder->as_string(),
                          static_cast<std::uint64_t>(term->as_number()));
  } catch (const std::exception&) {
  }
}

/// The fleet thread: one hello round to learn the standing lease, then on
/// the sync cadence either renew-and-replicate (holder) or watch for the
/// holder's silence and bid (try_acquire bids exactly when the known
/// lease has expired). Peer exchanges ride peer_call → net, so injected
/// faults hit this path too: a dropped renewal round just narrows the
/// margin to the next one.
void Router::Impl::sync_loop() {
  {
    io::WireRequest hello;
    hello.op = io::WireOp::PeerHello;
    hello.endpoint = self_endpoint;
    hello.term = lease->status().term;
    const std::string hello_line = io::wire_request_json(hello);
    for (const std::string& peer : options.peers) {
      if (stopping.load(std::memory_order_relaxed)) return;
      if (const auto reply = peer_call(peer, hello_line))
        observe_peer_reply(*reply);
    }
  }
  const double interval_ms =
      options.sync_interval_ms > 0
          ? options.sync_interval_ms
          : std::max(20.0, options.lease_ttl_ms / 3.0);
  bool was_held = false;
  while (!stopping.load(std::memory_order_relaxed)) {
    // Nap in slices so stop() stays prompt at any cadence.
    double napped = 0.0;
    while (napped < interval_ms &&
           !stopping.load(std::memory_order_relaxed)) {
      const double slice = std::min(20.0, interval_ms - napped);
      timespec nap{0, static_cast<long>(slice * 1e6)};
      ::nanosleep(&nap, nullptr);
      napped += slice;
    }
    if (stopping.load(std::memory_order_relaxed)) break;

    const cluster::LeaseStatus status = lease->try_acquire();
    if (!status.held) {
      if (was_held) obs_lease_lost->add(1);
      was_held = false;
      continue;  // follower: state arrives passively via peer.sync
    }
    if (!was_held) {
      stat_lease_acquires.fetch_add(1, std::memory_order_relaxed);
      obs_lease_acquired->add(1);
      // A takeover is the failover event the HA drill measures: record it
      // as a single-span trace so `{"op":"traces"}` shows when it happened
      // and which term it won.
      const std::uint64_t now_us = obs::steady_micros();
      obs::TraceContext ctx = obs::make_trace_context();
      obs::TraceRecorder recorder(ctx);
      recorder.record("router.lease.takeover", obs::new_span_id(), 0, now_us,
                      obs::steady_micros());
      traces.add(ctx.hi, ctx.lo, recorder.spans());
    } else {
      stat_lease_renewals.fetch_add(1, std::memory_order_relaxed);
      obs_lease_renewed->add(1);
    }
    was_held = true;

    // Broadcast the claim, then the state. Replies carry the freshest
    // term/holder; folding them back in is how a deposed leader learns it
    // must stand down before the next round.
    io::WireRequest claim;
    claim.op = io::WireOp::PeerLease;
    claim.endpoint = self_endpoint;
    claim.term = status.term;
    const std::string claim_line = io::wire_request_json(claim);
    const std::string sync_line = build_sync_line();
    for (const std::string& peer : options.peers) {
      if (stopping.load(std::memory_order_relaxed)) break;
      if (const auto reply = peer_call(peer, claim_line))
        observe_peer_reply(*reply);
      if (!lease->status().held) break;  // deposed mid-round
      if (const auto reply = peer_call(peer, sync_line)) {
        observe_peer_reply(*reply);
        stat_syncs_sent.fetch_add(1, std::memory_order_relaxed);
        obs_syncs->add(1);
      }
    }
  }
}

std::string Router::Impl::stats_json(std::int64_t id) const {
  std::ostringstream out;
  out << "{";
  if (id >= 0) out << "\"id\":" << id << ",";
  out << "\"stats\":true,\"role\":\"router\",\"router\":{"
      << "\"connections\":" << stat_connections.load(std::memory_order_relaxed)
      << ",\"requests\":" << stat_requests.load(std::memory_order_relaxed)
      << ",\"errors\":" << stat_errors.load(std::memory_order_relaxed)
      << ",\"rejected\":" << stat_rejected.load(std::memory_order_relaxed)
      << ",\"l1_hits\":" << stat_l1_hits.load(std::memory_order_relaxed)
      << ",\"failovers\":" << stat_failovers.load(std::memory_order_relaxed)
      << ",\"inflight\":" << inflight.load(std::memory_order_relaxed)
      << ",\"max_inflight\":" << options.max_inflight << "}";
  out << ",\"cluster\":{\"dynamic\":" << (options.dynamic ? "true" : "false")
      << ",\"epoch\":" << membership.epoch()
      << ",\"members\":" << membership.size()
      << ",\"joins\":" << stat_joins.load(std::memory_order_relaxed)
      << ",\"leaves\":" << stat_leaves.load(std::memory_order_relaxed)
      << ",\"evictions\":" << stat_evictions.load(std::memory_order_relaxed)
      << ",\"replicas\":" << options.replicas
      << ",\"promote_after\":" << options.promote_after
      << ",\"promoted\":" << hot_keys.promoted_count()
      << ",\"promotions\":" << stat_promotions.load(std::memory_order_relaxed)
      << ",\"replica_hits\":"
      << stat_replica_hits.load(std::memory_order_relaxed)
      << ",\"replica_puts\":"
      << stat_replica_puts.load(std::memory_order_relaxed) << "}";
  if (lease) {
    const cluster::LeaseStatus status = lease->status();
    out << ",\"lease\":{\"self\":\"" << io::json::escape(self_endpoint)
        << "\",\"holder\":\"" << io::json::escape(status.holder)
        << "\",\"term\":" << status.term
        << ",\"held\":" << (status.held ? "true" : "false")
        << ",\"valid\":" << (status.valid ? "true" : "false")
        << ",\"peers\":" << options.peers.size()
        << ",\"acquires\":" << stat_lease_acquires.load(std::memory_order_relaxed)
        << ",\"renewals\":" << stat_lease_renewals.load(std::memory_order_relaxed)
        << ",\"redirects\":" << stat_redirects.load(std::memory_order_relaxed)
        << ",\"forwards\":" << stat_forwards.load(std::memory_order_relaxed)
        << ",\"syncs_sent\":" << stat_syncs_sent.load(std::memory_order_relaxed)
        << ",\"syncs_applied\":"
        << stat_syncs_applied.load(std::memory_order_relaxed) << "}";
  } else {
    out << ",\"lease\":null";
  }
  if (l1) {
    const cache::CacheStats stats = l1->stats();
    out << ",\"l1\":{\"hits\":" << stats.hits
        << ",\"misses\":" << stats.misses
        << ",\"evictions\":" << stats.evictions
        << ",\"insertions\":" << stats.insertions
        << ",\"entries\":" << stats.entries << ",\"bytes\":" << stats.bytes
        << ",\"capacity_bytes\":" << l1->capacity_bytes() << "}";
  } else {
    out << ",\"l1\":null";
  }
  const std::vector<BackendSnapshot> snapshot = backend_snapshot();
  out << ",\"backends\":[";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const PoolStats pool = snapshot[i].pool->stats();
    if (i != 0) out << ",";
    out << "{\"endpoint\":\"" << io::json::escape(snapshot[i].endpoint)
        << "\",\"alive\":" << (pool.alive ? "true" : "false")
        << ",\"binary\":" << (pool.binary ? "true" : "false")
        << ",\"static\":" << (snapshot[i].is_static ? "true" : "false")
        << ",\"requests\":" << pool.requests
        << ",\"failures\":" << pool.failures
        << ",\"inflight\":" << pool.inflight << "}";
  }
  out << "],\"metrics\":" << obs::metrics_json(obs::default_registry());
  out << "}";
  return out.str();
}

/// One slow-request JSON line: wall-clock, trace id (when traced), who
/// served it, the canonical key, strategy, and the recorder's span
/// durations — enough to pull the full tree via `{"op":"trace"}`.
void Router::Impl::log_slow(const RouteTask& task, double elapsed_ms,
                            const std::string& trace_hex) {
  std::ostringstream line;
  line << "{\"slow\":true,\"tier\":\"router\",\"ms\":"
       << io::json::number(elapsed_ms);
  if (!task.strategy.empty())
    line << ",\"strategy\":\"" << io::json::escape(task.strategy) << "\"";
  if (!task.label.empty())
    line << ",\"label\":\"" << io::json::escape(task.label) << "\"";
  if (!trace_hex.empty())
    line << ",\"trace\":\"" << trace_hex << "\"";
  if (task.canonical_mode)
    line << ",\"canon_key\":\""
         << obs::trace_id_hex(task.canonical.key.hi, task.canonical.key.lo)
         << "\"";
  if (task.forwarded && !task.preference.empty())
    line << ",\"backend\":\""
         << io::json::escape(task.preference[task.preference_cursor]) << "\"";
  if (task.failovers > 0) line << ",\"failovers\":" << task.failovers;
  if (task.trace) {
    line << ",\"spans\":{";
    const std::vector<obs::Span> spans = task.trace->spans();
    for (std::size_t i = 0; i < spans.size(); ++i) {
      if (i != 0) line << ",";
      line << "\"" << io::json::escape(spans[i].name)
           << "\":" << spans[i].dur_us;
    }
    line << "}";
  }
  // The flight recorder's recent tail rides along: what the router (pool
  // reconnects, waves of failovers) was doing while this request crawled.
  line << ",\"events\":" << obs::events_json(obs::snapshot_events(32));
  line << "}";
  if (slow_file.is_open()) {
    slow_file.write_line(line.str());
    return;
  }
  std::lock_guard<std::mutex> lock(slow_mutex);
  std::fprintf(stderr, "%s\n", line.str().c_str());
  std::fflush(stderr);
}

/// `{"op":"metrics","scope":"fleet"}`: scrape every backend and peer
/// router (short-lived dials, 2s timeouts each), merge the expositions
/// with this router's own registry, and answer with one fleet-wide body.
/// Down instances are skipped — federation reports who answered.
std::string Router::Impl::fleet_metrics_json(std::int64_t id) {
  std::vector<obs::InstanceExposition> instances;
  instances.push_back(obs::InstanceExposition{
      self_endpoint.empty() ? "router" : self_endpoint,
      obs::prometheus_text(obs::default_registry())});
  // Backends first (endpoint-sorted), then peers, so the per-instance
  // series order in the exposition is stable across scrapes.
  std::vector<std::string> targets;
  for (const BackendSnapshot& backend : backend_snapshot())
    targets.push_back(backend.endpoint);
  for (const std::string& peer : options.peers) targets.push_back(peer);
  for (const std::string& endpoint : targets) {
    const std::optional<std::string> reply =
        peer_call(endpoint, "{\"op\":\"metrics\"}");
    if (!reply) continue;
    try {
      const io::json::Value document = io::json::Value::parse(*reply);
      const io::json::Value* body = document.find("body");
      if (body == nullptr || !body->is_string()) continue;
      instances.push_back(
          obs::InstanceExposition{endpoint, body->as_string()});
    } catch (const std::exception&) {
    }
  }
  std::ostringstream reply;
  reply << "{";
  if (id >= 0) reply << "\"id\":" << id << ",";
  reply << "\"metrics\":true,\"scope\":\"fleet\",\"instances\":"
        << instances.size()
        << ",\"content_type\":\"text/plain; version=0.0.4\",\"body\":\""
        << io::json::escape(obs::federate_prometheus(instances)) << "\"}";
  return reply.str();
}

/// Pull the raw `"events":[...]` array out of a backend reply so the
/// lifted re-render can carry the backend's flight-recorder snapshot
/// verbatim. Empty when the reply has none. (A top-level key only —
/// string values have their quotes escaped, so the needle can't match
/// inside a label.)
static std::string raw_events_array(const std::string& raw) {
  const std::size_t key = raw.find("\"events\":[");
  if (key == std::string::npos) return std::string();
  const std::size_t open = key + 9;  // the '['
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = open; i < raw.size(); ++i) {
    const char c = raw[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"')
      in_string = true;
    else if (c == '[')
      ++depth;
    else if (c == ']' && --depth == 0)
      return raw.substr(open, i - open + 1);
  }
  return std::string();
}

/// Park a pre-rendered JSON reply (admin verbs, passthroughs, protocol
/// errors that never had a binary shape) as the task's outcome.
void Router::Impl::resolve_json(RouteTask& task, std::string reply,
                                bool is_error) {
  task.immediate = std::move(reply);
  task.immediate_is_error = is_error;
  task.resolved = true;
}

/// Resolve a task with an error, in whichever shape its client speaks:
/// the message alone for a binary-solve client (encoded as a type-3 frame
/// at send time), the rendered error_json line otherwise.
void Router::Impl::resolve_error(RouteTask& task, const std::string& message) {
  if (task.binary_solve) {
    task.error_message = message;
    task.immediate_is_error = true;
    task.resolved = true;
    return;
  }
  resolve_json(task, error_json(message, task.label, task.client_id), true);
}

/// Decorate a canonical-space report for one client: lift the partition
/// through the request's own permutation record, re-validate, restore the
/// label, and stamp routing telemetry — in place. Returns "" on success,
/// the error message otherwise. `source` names who answered (a backend
/// endpoint, "l1", or "local").
std::string Router::Impl::render_report_core(RouteTask& task,
                                             engine::SolveReport& report,
                                             const char* source) {
  try {
    report.partition = canon::lift(report.partition, task.canonical);
  } catch (const std::exception& e) {
    return std::string("router: lift failed: ") + e.what();
  }
  // Soundness gate — cached snapshots and remote replies are inputs, not
  // trusted state. An invalid certificate becomes an error, never a wrong
  // answer.
  if (!validate_partition(task.original, report.partition))
    return "router: invalid lifted certificate";
  report.label = task.label;
  report.upper_bound = report.partition.size();
  report.add_telemetry("routed.backend", source);
  if (task.failovers > 0)
    report.add_telemetry("routed.failover",
                         static_cast<std::uint64_t>(task.failovers));
  if (task.promoted_now)
    report.add_telemetry("cluster.promote", task.hot_hits);
  return std::string();
}

/// Resolve a task from a canonical-space report: run the lift core, then
/// park the outcome — the JSON reply text for line/type-4 clients, the
/// lifted report object for binary-solve clients (the reply loop encodes
/// the type-2 frame after the trace root closes, so the spans ride the
/// payload).
void Router::Impl::resolve_report(RouteTask& task, engine::SolveReport report,
                                  const char* source) {
  const std::string failure = render_report_core(task, report, source);
  if (!failure.empty()) {
    resolve_error(task, failure);
    return;
  }
  if (task.binary_solve) {
    task.final_report = std::move(report);
    task.immediate_is_error = false;
    task.resolved = true;
    return;
  }
  std::string reply = io::wire_response_json(report, task.include_partition,
                                             task.client_id);
  if (!task.backend_events.empty() && !reply.empty() && reply.back() == '}') {
    // A budget-cut backend attached its flight-recorder tail; the lift
    // re-rendered the reply, so splice the snapshot back in.
    reply.pop_back();
    reply += ",\"events\":" + task.backend_events + "}";
  }
  resolve_json(task, std::move(reply), false);
}

/// Fan a promoted key's canonical-space result to its replica set as
/// `{"op":"put"}` cache writes — fire-and-forget: nobody waits on the
/// replies, a broken replica just misses one write (the next promotion or
/// fresh solve re-fans). Skips the backend that already served it.
void Router::Impl::replicate(RouteTask& task,
                             const engine::SolveReport& report) {
  if (report.partition.empty()) return;
  const std::string serving = task.forwarded && !task.preference.empty()
                                  ? task.preference[task.preference_cursor]
                                  : std::string();
  if (!task.view) task.view = views.current();
  io::WireRequest put;
  put.op = io::WireOp::Put;
  put.request.matrix = task.canonical.pattern;
  put.request.strategy = task.strategy;
  put.put_report = report;
  put.put_report.label.clear();
  // The telemetry and timings describe *this* exchange (the serving
  // backend's cache_hit, routing stamps, phase clocks). Shipping them into
  // a replica's cache would make the replica's future replies lead with
  // stale entries — find_telemetry returns the first match, so a
  // put-warmed replica would report cache_hit:"false" forever. Replicas
  // stamp their own.
  put.put_report.telemetry.clear();
  put.put_report.timings.clear();
  for (const std::string& endpoint :
       task.view->top(task.route_key, options.replicas)) {
    if (endpoint == serving) continue;
    const std::shared_ptr<BackendPool> pool = pool_for(endpoint);
    if (!pool) continue;
    const std::uint64_t id = next_id.fetch_add(1, std::memory_order_relaxed);
    put.id = static_cast<std::int64_t>(id);
    if (pool->submit(id, io::wire_request_json(put), /*framed=*/false,
                     std::make_shared<PendingReply>()))
      stat_replica_puts.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Point the watch registry's entry for this task's client id at the
/// backend currently serving it. Called at dispatch and after every
/// failover resubmit, so a watcher landing mid-failover follows the solve.
void Router::Impl::register_watch(const RouteTask& task) {
  if (task.client_id < 0 || !task.forwarded || task.preference.empty())
    return;
  std::lock_guard<std::mutex> lock(watch_mutex);
  watch_routes[task.client_id] = WatchRoute{
      task.preference[task.preference_cursor], task.router_id};
}

/// Drop the registry entry once the task retires — but only our own entry:
/// a second solve reusing the same client id on another connection may
/// have replaced it mid-flight.
void Router::Impl::unregister_watch(const RouteTask& task) {
  if (task.client_id < 0) return;
  std::lock_guard<std::mutex> lock(watch_mutex);
  const auto it = watch_routes.find(task.client_id);
  if (it != watch_routes.end() && it->second.router_id == task.router_id)
    watch_routes.erase(it);
}

/// `{"op":"watch","id":N}` at the router: resolve N to the serving backend
/// and spawn a tracked relay thread. The relay dials the backend on a
/// dedicated socket (watch streams block — they must not ride the pooled
/// pipelined connections), so it cannot run on a reactor worker for the
/// lifetime of someone else's solve.
void Router::Impl::handle_watch(const rnet::ConnPtr& conn, std::int64_t id,
                                rnet::WireMode mode) {
  {
    std::lock_guard<std::mutex> lock(watch_mutex);
    if (watch_routes.find(id) == watch_routes.end()) {
      // Mirror the backend's wording: clients retry the same error string
      // whether they watch through a router or directly.
      conn->send(framed_json(
          mode, error_json("watch: no in-flight request with id " +
                               std::to_string(id),
                           "", id)));
      return;
    }
  }
  reap_watch_threads(false);
  auto done = std::make_shared<std::atomic<bool>>(false);
  WatchThread watcher;
  watcher.done = done;
  watcher.thread = std::thread([this, conn, id, mode, done]() {
    watch_relay(conn, id, mode);
    done->store(true, std::memory_order_release);
  });
  const std::lock_guard<std::mutex> lock(watch_threads_mutex);
  watch_threads.push_back(std::move(watcher));
}

/// The relay body: forward the watch under the router-assigned id and
/// stream every frame back with the client's id restored. Ends on the
/// backend's done line, backend EOF, client hangup, or drain.
void Router::Impl::watch_relay(const rnet::ConnPtr& conn, std::int64_t id,
                               rnet::WireMode mode) {
  WatchRoute route;
  {
    std::lock_guard<std::mutex> lock(watch_mutex);
    const auto it = watch_routes.find(id);
    if (it == watch_routes.end()) {
      // Retired between handle_watch and the thread start — same wording.
      conn->send(framed_json(
          mode, error_json("watch: no in-flight request with id " +
                               std::to_string(id),
                           "", id)));
      return;
    }
    route = it->second;
  }
  std::string host;
  std::uint16_t port = 0;
  int fd = -1;
  if (net::parse_endpoint(route.endpoint, host, port)) {
    try {
      fd = net::tcp_connect(host, port);
    } catch (const std::exception&) {
    }
  }
  if (fd < 0) {
    conn->send(framed_json(mode, error_json("watch: backend '" +
                                                route.endpoint +
                                                "' unreachable",
                                            "", id)));
    return;
  }
  if (!write_line(fd, "{\"op\":\"watch\",\"id\":" +
                          std::to_string(route.router_id) + "}")) {
    ::close(fd);
    conn->send(framed_json(mode, error_json("watch: backend '" +
                                                route.endpoint +
                                                "' unreachable",
                                            "", id)));
    return;
  }
  // Every backend line (frames, the done line, errors) leads with the
  // forwarded id; swap it for the id the client knows.
  const std::string from = "{\"id\":" + std::to_string(route.router_id);
  const std::string to = "{\"id\":" + std::to_string(id);
  timeval nap{0, 200 * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &nap, sizeof nap);
  net::LineBuffer buffer;
  char chunk[8192];
  bool done = false;
  while (!done && !stopping.load(std::memory_order_relaxed)) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Idle: a client that hung up mid-solve must release this thread
      // (and the backend's) promptly.
      if (conn->closed() || stopping.load(std::memory_order_relaxed)) break;
      continue;
    }
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::string line;
    while (buffer.pop(line)) {
      if (line.rfind(from, 0) == 0) line = to + line.substr(from.size());
      const bool final_line =
          line.find("\"done\":true") != std::string::npos ||
          line.find("\"error\"") != std::string::npos;
      // Intermediate frames ride try_send — watch is diagnostics, not data
      // plane, so a slow watcher loses frames rather than stalling the
      // relay. The terminal line uses send: it must arrive or the
      // connection is already gone.
      const bool ok = final_line ? conn->send(framed_json(mode, line))
                                 : conn->try_send(framed_json(mode, line));
      if (!ok || line.find("\"done\":true") != std::string::npos) {
        done = true;
        break;
      }
    }
  }
  ::close(fd);
}

/// Join watch relays that have finished (every spawn), or all of them
/// (stop() — they exit promptly once `stopping` is set).
void Router::Impl::reap_watch_threads(bool join_all) {
  std::vector<std::thread> joinable;
  {
    const std::lock_guard<std::mutex> lock(watch_threads_mutex);
    for (std::size_t i = 0; i < watch_threads.size();) {
      if (join_all ||
          watch_threads[i].done->load(std::memory_order_acquire)) {
        joinable.push_back(std::move(watch_threads[i].thread));
        watch_threads.erase(watch_threads.begin() +
                            static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (std::thread& thread : joinable)
    if (thread.joinable()) thread.join();
}

/// Parse one client message and decide its path: immediate reply,
/// passthrough forward, or canonical forward. Admission happens here,
/// dispatch later.
void Router::Impl::prepare_task(const rnet::Message& message,
                                RouteTask& task) {
  task.mode = message.mode;
  io::WireRequest wire;
  if (message.mode == rnet::WireMode::Binary &&
      message.frame_type == rnet::kFrameSolveRequest) {
    task.binary_solve = true;
    try {
      wire = io::parse_binary_request(message.payload);
    } catch (const std::exception& e) {
      task.client_id = io::binary_salvage_id(message.payload);
      resolve_error(task, e.what());
      return;
    }
  } else if (message.mode == rnet::WireMode::Binary &&
             message.frame_type != rnet::kFrameJson) {
    resolve_json(task,
                 error_json("unexpected frame type " +
                                std::to_string(message.frame_type) +
                                " (clients send solve or json frames)",
                            ""),
                 true);
    return;
  } else {
    // A request line, or the identical JSON text in a type-4 frame.
    if (message.payload.find_first_not_of(" \t") == std::string::npos) {
      task.skip = true;
      return;
    }
    try {
      wire = io::parse_wire_request(message.payload);
    } catch (const std::exception& e) {
      resolve_json(task,
                   error_json(e.what(), "",
                              io::salvage_request_id(message.payload)),
                   true);
      return;
    }
  }
  task.client_id = wire.id;
  if (wire.op == io::WireOp::Stats) {
    resolve_json(task, stats_json(wire.id), false);
    return;
  }
  if (wire.op == io::WireOp::Metrics) {
    if (wire.scope == "fleet") {
      resolve_json(task, fleet_metrics_json(wire.id), false);
      return;
    }
    if (!wire.scope.empty() && wire.scope != "self" &&
        wire.scope != "local") {
      resolve_json(task,
                   error_json("field 'scope' must be self|local|fleet (got '" +
                                  wire.scope + "')",
                              "", wire.id),
                   true);
      return;
    }
    std::ostringstream reply;
    reply << "{";
    if (wire.id >= 0) reply << "\"id\":" << wire.id << ",";
    reply << "\"metrics\":true,\"content_type\":\"text/plain; "
             "version=0.0.4\",\"body\":\""
          << io::json::escape(obs::prometheus_text(obs::default_registry()))
          << "\"}";
    resolve_json(task, reply.str(), false);
    return;
  }
  if (wire.op == io::WireOp::Events) {
    // The router's own flight recorder: pool reconnects and whatever else
    // this process's rings hold, merged and tick-ordered.
    std::ostringstream reply;
    reply << "{";
    if (wire.id >= 0) reply << "\"id\":" << wire.id << ",";
    reply << "\"events\":" << obs::events_json(obs::snapshot_events()) << "}";
    resolve_json(task, reply.str(), false);
    return;
  }
  if (wire.op == io::WireOp::Watch) {
    // Relayed from the reply loop (it owns the client fd for streaming).
    task.watch = true;
    return;
  }
  if (wire.op == io::WireOp::Trace) {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    obs::parse_trace_id(wire.trace_id, &hi, &lo);
    const std::vector<obs::Span> spans = traces.find(hi, lo);
    if (spans.empty()) {
      resolve_json(task, error_json("unknown trace id", "", wire.id), true);
    } else {
      resolve_json(task, obs::trace_tree_json(wire.trace_id, spans), false);
    }
    return;
  }
  if (wire.op == io::WireOp::Traces) {
    std::ostringstream reply;
    reply << "{";
    if (wire.id >= 0) reply << "\"id\":" << wire.id << ",";
    reply << "\"traces\":[";
    const auto recent = traces.recent(32);
    for (std::size_t t = 0; t < recent.size(); ++t) {
      if (t != 0) reply << ",";
      reply << "{\"id\":\"" << recent[t].id << "\",\"root\":\""
            << io::json::escape(recent[t].root)
            << "\",\"dur_us\":" << recent[t].dur_us
            << ",\"spans\":" << recent[t].spans << "}";
    }
    reply << "]}";
    resolve_json(task, reply.str(), false);
    return;
  }
  if (wire.op == io::WireOp::Join || wire.op == io::WireOp::Leave ||
      wire.op == io::WireOp::Heartbeat) {
    std::string reply = handle_membership(wire);
    const bool is_error = is_error_reply(reply);
    resolve_json(task, std::move(reply), is_error);
    return;
  }
  if (wire.op == io::WireOp::PeerHello || wire.op == io::WireOp::PeerLease ||
      wire.op == io::WireOp::PeerSync) {
    std::string reply = handle_peer(wire);
    const bool is_error = is_error_reply(reply);
    resolve_json(task, std::move(reply), is_error);
    return;
  }
  if (wire.op == io::WireOp::Put) {
    // The router *sends* puts; receiving one means a misdirected fan-out.
    resolve_json(task,
                 error_json("put is a backend verb, not a router verb", "",
                            wire.id),
                 true);
    return;
  }
  task.label = wire.request.label;
  task.include_partition = wire.include_partition;
  if (!try_admit()) {
    stat_rejected.fetch_add(1, std::memory_order_relaxed);
    obs_rejected->add(1);
    resolve_error(task,
                  "overloaded: " + std::to_string(options.max_inflight) +
                      " requests already in flight");
    return;
  }
  task.admitted = true;
  task.router_id = next_id.fetch_add(1, std::memory_order_relaxed);

  if (wire.has_trace || options.trace) {
    // Honor a client-sent context; --trace mints one here so a fleet is
    // observable without client changes. The "router.request" root span
    // parents under the client's span (0 = this trace starts here), and
    // the dispatch span id is allocated now because the forwarded line
    // names it as the backend's parent.
    obs::TraceContext ctx =
        wire.has_trace ? wire.trace : obs::make_trace_context();
    task.remote_parent = ctx.parent_span;
    task.root_span = obs::new_span_id();
    task.dispatch_span = obs::new_span_id();
    ctx.parent_span = task.root_span;
    task.trace = std::make_shared<obs::TraceRecorder>(ctx);
  }

  io::WireRequest forward = wire;
  forward.id = static_cast<std::int64_t>(task.router_id);
  if (task.trace) {
    forward.has_trace = true;
    forward.trace = task.trace->context();
    forward.trace.parent_span = task.dispatch_span;
  }

  if (wire.request.masked) {
    // Masked patterns have no canonical form: forward verbatim, keyed by
    // the raw pattern text alone — ids, labels, and knobs must not split
    // the shard — so repeats of one masked pattern share a backend.
    // Passthroughs always travel as JSON (the binary solve frame cannot
    // carry a mask); backend_payload() renders lazily per pool mode.
    task.passthrough = true;
    task.route_key = fnv1a64(io::render_pattern_text(wire.request));
    task.forward = std::move(forward);
    return;
  }

  task.canonical_mode = true;
  task.original = wire.request.matrix;
  std::uint64_t span_start = obs::steady_micros();
  task.canonical = canon::canonicalize(wire.request.matrix);
  if (task.trace)
    task.trace->record("router.canon", obs::new_span_id(), task.root_span,
                       span_start, obs::steady_micros());
  task.strategy = wire.request.strategy;
  task.l1_key = task.canonical.key.mixed_with(task.strategy);
  // Shard by the pattern alone (not the strategy): every view of one
  // canonical pattern warms the same backend.
  task.route_key = task.canonical.key.hi ^
                   (task.canonical.key.lo * 0x9e3779b97f4a7c15ULL);

  // All-zero patterns canonicalize to an empty matrix that the wire format
  // cannot carry; their answer is trivial, so the router owns it.
  if (task.canonical.pattern.rows() == 0 ||
      task.canonical.pattern.cols() == 0) {
    engine::SolveReport report;
    report.status = engine::Status::Optimal;
    report.strategy = task.strategy;
    resolve_report(task, std::move(report), "local");
    return;
  }

  // Hot-key accounting happens before the L1 lookup so L1-served repeats
  // heat their key too (promotion must not stall just because the router
  // already answers the key locally).
  const cluster::HotKeyUpdate hot = hot_keys.record(task.route_key);
  task.promoted = hot.promoted;
  task.promoted_now = hot.promoted_now;
  task.hot_hits = hot.hits;
  if (hot.promoted_now)
    stat_promotions.fetch_add(1, std::memory_order_relaxed);

  if (l1) {
    span_start = obs::steady_micros();
    std::optional<cache::CachedResult> hit =
        l1->lookup(task.l1_key, task.strategy, task.canonical.pattern);
    if (task.trace)
      task.trace->record("router.l1", obs::new_span_id(), task.root_span,
                         span_start, obs::steady_micros());
    if (hit) {
      stat_l1_hits.fetch_add(1, std::memory_order_relaxed);
      obs_l1_hits->add(1);
      engine::SolveReport report = std::move(hit->report);
      // A key promoted off an L1 repeat still warms its replicas — that is
      // the whole point: the backends must hold it before one of them (or
      // this router) goes away.
      if (task.promoted_now) replicate(task, report);
      report.add_telemetry("routed.l1", "hit");
      resolve_report(task, std::move(report), "l1");
      return;
    }
  }

  // Forward the *canonical* pattern: the backend answers in canonical
  // space (its own canon pass is then near-trivial), which is exactly the
  // space the L1 stores and the lift consumes. The client's label stays
  // here; the partition always rides along for the L1 insert. The
  // canonical key rides too: a binary-framed forward carries it so the
  // backend skips its own canon pass entirely (the JSON render ignores
  // these fields — old backends re-derive the key themselves).
  forward.request.matrix = task.canonical.pattern;
  forward.request.label.clear();
  forward.include_partition = true;
  forward.request.pre_canonical = true;
  forward.request.canon_hi = task.canonical.key.hi;
  forward.request.canon_lo = task.canonical.key.lo;
  task.forward = std::move(forward);
}

/// Render (once, memoized) the forward in whichever encoding the serving
/// pool speaks: a complete type-1 solve frame for binary pools on the
/// canonical path, the JSON request line otherwise. Both encodings may be
/// rendered over one task's lifetime — a failover can cross pools with
/// different wire modes.
const std::string& Router::Impl::backend_payload(RouteTask& task,
                                                 bool framed) {
  if (framed) {
    if (task.backend_frame.empty())
      task.backend_frame = rnet::encode_frame(
          rnet::kFrameSolveRequest, io::binary_request_payload(task.forward));
    return task.backend_frame;
  }
  if (task.backend_line.empty())
    task.backend_line = io::wire_request_json(task.forward);
  return task.backend_line;
}

/// First submission: take the current view, then walk the key's HRW
/// preference list to the first live pool. False when every backend is
/// down or the view is empty (immediate error reply).
bool Router::Impl::dispatch(RouteTask& task) {
  task.pending = std::make_shared<PendingReply>();
  task.view = views.current();
  task.preference = task.view->ordered(task.route_key);
  task.dispatch_start_us = obs::steady_micros();
  for (std::size_t i = 0; i < task.preference.size(); ++i) {
    const std::shared_ptr<BackendPool> pool = pool_for(task.preference[i]);
    if (!pool) continue;  // membership raced ahead of the pool set
    const bool framed =
        task.canonical_mode && options.binary_backend && pool->binary();
    if (pool->submit(task.router_id, backend_payload(task, framed), framed,
                     task.pending)) {
      task.preference_cursor = i;
      task.failovers += i > 0 ? 1 : 0;
      if (i > 0) {
        stat_failovers.fetch_add(1, std::memory_order_relaxed);
        obs_failovers->add(1);
      }
      task.forwarded = true;
      register_watch(task);
      return true;
    }
  }
  resolve_error(task, "no live backend (" +
                          std::to_string(task.view->size()) + " members)");
  return false;
}

/// Block for this task's backend reply, failing over to the next live
/// backend in HRW order when the serving connection breaks or times out.
/// Returns the raw reply line, or an empty string when every backend was
/// exhausted (the caller renders the error).
std::string Router::Impl::await_reply(RouteTask& task) {
  // Each failover re-walks the preference list from the slot after the
  // one that failed; a bounded number of total attempts guards against a
  // backend that accepts and immediately breaks, forever.
  std::size_t attempts = 0;
  const std::size_t max_attempts = 2 * task.preference.size() + 2;
  while (attempts++ < max_attempts) {
    const double window = options.reply_timeout_seconds;
    PendingReply::Outcome outcome;
    if (window > 0) {
      outcome = task.pending->wait(window);
    } else {
      // "Wait forever" still polls in slices, so a SIGTERM drain can
      // interrupt a wait on a backend that will never answer.
      do {
        outcome = task.pending->wait(0.5);
      } while (outcome == PendingReply::Outcome::TimedOut &&
               !stopping.load(std::memory_order_relaxed));
    }
    if (outcome == PendingReply::Outcome::Reply) {
      std::lock_guard<std::mutex> lock(task.pending->mutex);
      task.reply_frame_type = task.pending->frame_type;
      return task.pending->line;
    }
    if (outcome == PendingReply::Outcome::TimedOut) {
      // Withdraw the registration; a reply that raced the give-up still
      // counts (served, not re-solved).
      if (const auto pool = pool_for(task.preference[task.preference_cursor]))
        pool->forget(task.router_id);
      if (task.pending->has_reply()) {
        std::lock_guard<std::mutex> lock(task.pending->mutex);
        task.reply_frame_type = task.pending->frame_type;
        return task.pending->line;
      }
    }
    if (stopping.load(std::memory_order_relaxed)) break;
    // The serving backend broke (or hung): resubmit to the next live one.
    // The walk stays on the task's own view — a key whose owner just left
    // fails over along the same preference list the dispatch used.
    bool resubmitted = false;
    for (std::size_t step = 1; step <= task.preference.size(); ++step) {
      const std::size_t i =
          (task.preference_cursor + step) % task.preference.size();
      const std::shared_ptr<BackendPool> pool = pool_for(task.preference[i]);
      if (!pool) continue;
      task.pending->reset();
      const bool framed =
          task.canonical_mode && options.binary_backend && pool->binary();
      if (pool->submit(task.router_id, backend_payload(task, framed), framed,
                       task.pending)) {
        task.preference_cursor = i;
        ++task.failovers;
        stat_failovers.fetch_add(1, std::memory_order_relaxed);
        obs_failovers->add(1);
        register_watch(task);
        resubmitted = true;
        break;
      }
    }
    if (!resubmitted) break;
  }
  return std::string();
}

/// Resolve a forwarded task from its raw backend reply: a JSON line when
/// `reply_frame_type` is 0 (line replies and type-4 frames look identical
/// here), a raw type-2/3 frame payload otherwise. Empty raw means every
/// backend was exhausted.
void Router::Impl::finalize_reply(RouteTask& task, const std::string& raw) {
  if (task.trace && task.forwarded)
    // Submit → reply received, the backend exchange the server's own
    // "server.request" span (folded below) nests under.
    task.trace->record("router.dispatch", task.dispatch_span, task.root_span,
                       task.dispatch_start_us, obs::steady_micros());
  if (raw.empty()) {
    stat_errors.fetch_add(1, std::memory_order_relaxed);
    resolve_error(task, "all backends unavailable");
    return;
  }
  if (task.passthrough) {
    // Passthrough forwards are always JSON, so the reply is too.
    const bool is_error = raw.rfind("{\"error\"", 0) == 0;
    if (is_error)
      stat_errors.fetch_add(1, std::memory_order_relaxed);
    else
      stat_requests.fetch_add(1, std::memory_order_relaxed);
    resolve_json(task, net::with_id_prefix(raw, task.client_id), is_error);
    return;
  }
  if (task.reply_frame_type == rnet::kFrameError) {
    // The binary twin of the semantic-error branch below: re-own the
    // message, do not fail over.
    std::string message = "backend error";
    try {
      const io::BinaryError be = io::parse_binary_error(raw);
      if (!be.message.empty()) message = be.message;
    } catch (const std::exception&) {
    }
    stat_errors.fetch_add(1, std::memory_order_relaxed);
    resolve_error(task, message);
    return;
  }
  engine::SolveReport report;
  if (task.reply_frame_type == rnet::kFrameSolveReport) {
    try {
      io::BinaryReply br = io::parse_binary_report(raw);
      report = std::move(br.report);
      task.backend_events = br.events_json;
      // Fold the backend's spans into this request's recorder: they
      // already parent under the propagated dispatch span id, so the
      // assembled tree crosses the process boundary without fixups.
      if (task.trace && !br.spans_json.empty()) {
        try {
          task.trace->adopt(obs::spans_from_json(
              io::json::Value::parse(br.spans_json)));
        } catch (const std::exception&) {
          // Span text is diagnostics; a malformed tail never fails a solve.
        }
      }
    } catch (const std::exception& e) {
      stat_errors.fetch_add(1, std::memory_order_relaxed);
      resolve_error(task,
                    std::string("router: bad backend reply: ") + e.what());
      return;
    }
  } else if (raw.rfind("{\"error\"", 0) == 0) {
    // A semantic backend error (unknown strategy, bad knobs): re-own it so
    // the client sees its own label/id, and do not fail over — every
    // backend would refuse the same request.
    std::string message = "backend error";
    try {
      const io::json::Value document = io::json::Value::parse(raw);
      if (const io::json::Value* error = document.find("error");
          error != nullptr && error->is_string())
        message = error->as_string();
    } catch (const std::exception&) {
    }
    stat_errors.fetch_add(1, std::memory_order_relaxed);
    resolve_error(task, message);
    return;
  } else {
    try {
      const io::json::Value document = io::json::Value::parse(raw);
      report = io::parse_wire_response(document,
                                       task.canonical.pattern.rows(),
                                       task.canonical.pattern.cols());
      task.backend_events = raw_events_array(raw);
      // Fold the backend's spans into this request's recorder (see the
      // binary branch above).
      if (task.trace) {
        if (const io::json::Value* trace = document.find("trace");
            trace != nullptr && trace->is_object())
          if (const io::json::Value* spans = trace->find("spans");
              spans != nullptr && spans->is_array())
            task.trace->adopt(obs::spans_from_json(*spans));
      }
    } catch (const std::exception& e) {
      stat_errors.fetch_add(1, std::memory_order_relaxed);
      resolve_error(task,
                    std::string("router: bad backend reply: ") + e.what());
      return;
    }
  }
  // Insert the clean canonical-space report before stamping per-client
  // routing telemetry; the partition must witness the canonical pattern.
  const bool certified = static_cast<bool>(
      validate_partition(task.canonical.pattern, report.partition));
  if (l1 && certified)
    l1->insert(task.l1_key, task.strategy, task.canonical.pattern, report);
  const std::string endpoint = task.preference[task.preference_cursor];
  if (task.promoted && certified) {
    // Replica-aware accounting: a promoted key answered by a non-primary
    // member of its replica set is the survives-a-kill property working.
    if (task.preference_cursor > 0 &&
        task.preference_cursor < options.replicas) {
      stat_replica_hits.fetch_add(1, std::memory_order_relaxed);
      report.add_telemetry("cluster.replica_hit",
                           static_cast<std::uint64_t>(task.preference_cursor));
    }
    // Fan the result out when the key just crossed the threshold, or when
    // a backend actually re-solved it (a fresh certificate the other
    // replicas do not have yet). Warm repeats skip the fan-out.
    const std::string* cache_hit = report.find_telemetry("cache_hit");
    if (task.promoted_now ||
        (cache_hit != nullptr && *cache_hit == "false"))
      replicate(task, report);
  }
  const std::uint64_t lift_start = obs::steady_micros();
  resolve_report(task, std::move(report), endpoint.c_str());
  if (task.trace)
    task.trace->record("router.lift", obs::new_span_id(), task.root_span,
                       lift_start, obs::steady_micros());
  if (task.immediate_is_error)
    stat_errors.fetch_add(1, std::memory_order_relaxed);
  else
    stat_requests.fetch_add(1, std::memory_order_relaxed);
}

/// One micro-batch: prepare every message, dispatch the forwards (they
/// run concurrently on the backends — the pipelined fan-out), then await
/// and send replies in message order. Runs on a reactor worker: a blocked
/// await occupies the worker, never an event loop, which is why the route
/// tier sizes io_workers far above the serve tier's pool.
void Router::Impl::process_batch(const rnet::ConnPtr& conn,
                                 std::vector<rnet::Message> messages) {
  const std::uint64_t batch_start_us = obs::steady_micros();
  std::vector<RouteTask> tasks(messages.size());
  std::size_t admitted = 0;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    RouteTask& task = tasks[i];
    const rnet::Message& m = messages[i];
    if (m.upgrade) {
      // The negotiation ack: the extractor already flipped the input
      // framing, so this is the connection's last line-framed reply.
      task.mode = m.mode;
      const std::int64_t id = io::salvage_request_id(m.payload);
      task.client_id = id;
      resolve_json(task,
                   id >= 0 ? "{\"id\":" + std::to_string(id) +
                                 ",\"upgraded\":true}"
                           : "{\"upgraded\":true}",
                   false);
      continue;
    }
    prepare_task(m, task);
    if (task.admitted) ++admitted;
    if (task.admitted && !task.resolved) dispatch(task);
  }

  for (RouteTask& task : tasks) {
    if (task.skip) continue;
    if (task.watch) {
      // Spawns a tracked relay thread — the stream must not occupy this
      // worker for the lifetime of someone else's solve.
      if (!conn->closed()) handle_watch(conn, task.client_id, task.mode);
      continue;
    }
    const bool pre_resolved = task.resolved;
    if (!task.resolved) {
      finalize_reply(task, await_reply(task));
      unregister_watch(task);
    }
    const bool is_error = task.immediate_is_error;
    if (pre_resolved) {
      if (is_error)
        stat_errors.fetch_add(1, std::memory_order_relaxed);
      else if (task.admitted || task.canonical_mode)
        stat_requests.fetch_add(1, std::memory_order_relaxed);
    }

    const std::uint64_t done_us = obs::steady_micros();
    const std::uint64_t elapsed_us = done_us - batch_start_us;
    std::string trace_hex;
    std::string spans_json;
    if (task.trace) {
      // Close the root span, attach the assembled spans (router's own +
      // the backend's, folded in finalize_reply) to the reply, and publish
      // the trace before the send so an immediate {"op":"trace"} on
      // another connection finds it.
      const obs::TraceContext& ctx = task.trace->context();
      trace_hex = obs::trace_id_hex(ctx.hi, ctx.lo);
      task.trace->record("router.request", task.root_span, task.remote_parent,
                         task.trace->created_us(), done_us);
      std::vector<obs::Span> spans = task.trace->spans();
      // Passthrough replies are forwarded verbatim and already carry the
      // backend's own trace member; splicing a second one would duplicate
      // the key. Their router spans live in the local store only.
      if (!is_error && !task.passthrough) {
        if (task.binary_solve) {
          // The spans array rides the type-2 payload itself.
          spans_json = obs::spans_json(spans);
        } else if (!task.immediate.empty() && task.immediate.back() == '}') {
          task.immediate.pop_back();
          task.immediate += ",\"trace\":{\"id\":\"" + trace_hex +
                            "\",\"spans\":" + obs::spans_json(spans) + "}}";
        }
      }
      traces.add(ctx.hi, ctx.lo, std::move(spans));
    }
    if (task.admitted) {
      obs_request->record(elapsed_us);
      if (is_error)
        obs_errors->add(1);
      else
        obs_requests->add(1);
      if (options.slow_ms > 0) {
        const double elapsed_ms = static_cast<double>(elapsed_us) / 1000.0;
        if (elapsed_ms >= options.slow_ms)
          log_slow(task, elapsed_ms, trace_hex);
      }
    }

    if (task.binary_solve) {
      const std::uint8_t out_type =
          is_error ? rnet::kFrameError : rnet::kFrameSolveReport;
      const std::string payload =
          is_error ? io::binary_error_payload(task.client_id,
                                              task.error_message, task.label)
                   : io::binary_report_payload(
                         *task.final_report, task.include_partition,
                         task.client_id, task.original.rows(),
                         task.original.cols(), task.backend_events,
                         spans_json);
      conn->send(rnet::encode_frame(out_type, payload));
    } else {
      conn->send(framed_json(task.mode, task.immediate));
    }
    // A dead client still drains its remaining in-flight awaits (send on
    // a closed connection is a harmless no-op) so admission slots and
    // pending ids retire cleanly.
  }
  release_admitted(admitted);
}

void Router::Impl::health_loop() {
  const long interval_ns = static_cast<long>(
      std::max(1.0, options.health_interval_ms) * 1e6);
  while (!stopping.load(std::memory_order_relaxed)) {
    timespec nap{interval_ns / 1000000000L, interval_ns % 1000000000L};
    ::nanosleep(&nap, nullptr);
    std::vector<std::shared_ptr<BackendPool>> snapshot;
    {
      std::lock_guard<std::mutex> lock(pools_mutex);
      snapshot.reserve(pools.size());
      for (const auto& [endpoint, pool] : pools) snapshot.push_back(pool);
    }
    for (const auto& pool : snapshot) pool->maintain();
    if (!options.dynamic) continue;
    // Fleet mode: eviction is a membership *write*, so only the
    // leaseholder sweeps. A follower's view stays whatever the holder last
    // replicated — evicting locally would only diverge until the next
    // sync overwrote it.
    if (lease && !lease->status().held) continue;
    // Missed-heartbeat eviction: drop silent members, publish the new
    // epoch, then break their pools (outside the cluster lock) so any
    // in-flight replies fail over promptly.
    std::vector<std::string> evicted;
    std::vector<std::shared_ptr<BackendPool>> detached;
    {
      std::lock_guard<std::mutex> lock(cluster_mutex);
      evicted = membership.sweep();
      if (!evicted.empty()) {
        publish_view();
        for (const std::string& endpoint : evicted)
          if (auto pool = detach_pool(endpoint))
            detached.push_back(std::move(pool));
      }
    }
    if (!evicted.empty())
      stat_evictions.fetch_add(evicted.size(), std::memory_order_relaxed);
    for (const auto& pool : detached) pool->shutdown();
  }
}

Router::Router(RouterOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Router::~Router() { stop(); }

void Router::start() {
  Impl& impl = *impl_;
  if (impl.options.backends.empty() && !impl.options.dynamic)
    throw std::runtime_error(
        "router needs at least one backend (or --dynamic to let backends "
        "join)");
  for (const std::string& peer : impl.options.peers) {
    std::string host;
    std::uint16_t port = 0;
    if (!net::parse_endpoint(peer, host, port))
      throw std::runtime_error("bad peer endpoint '" + peer +
                               "' (want host:port)");
  }
  if (!impl.options.peers.empty() && impl.options.advertise.empty() &&
      (impl.options.host == "0.0.0.0" || impl.options.host == "::"))
    throw std::runtime_error(
        "--peers with a wildcard bind address needs --advertise=host:port "
        "(the identity peers grant the lease to and redirect clients at)");
  {
    std::lock_guard<std::mutex> lock(impl.cluster_mutex);
    for (const std::string& endpoint : impl.options.backends) {
      std::string host;
      std::uint16_t port = 0;
      if (!net::parse_endpoint(endpoint, host, port))
        throw std::runtime_error("bad backend endpoint '" + endpoint +
                                 "' (want host:port)");
      // Membership dedups by endpoint, so a repeated endpoint cannot
      // shadow a shard.
      const std::string normalized = host + ":" + std::to_string(port);
      impl.membership.add_static(normalized);
      impl.ensure_pool(normalized);
    }
    impl.publish_view();
  }
  // Best-effort initial connects: a late backend just starts in backoff.
  {
    std::vector<std::shared_ptr<BackendPool>> snapshot;
    {
      std::lock_guard<std::mutex> lock(impl.pools_mutex);
      for (const auto& [endpoint, pool] : impl.pools)
        snapshot.push_back(pool);
    }
    for (const auto& pool : snapshot) pool->maintain();
  }

  rnet::ReactorOptions reactor_options;
  reactor_options.host = impl.options.host;
  reactor_options.port = impl.options.port;
  reactor_options.event_loops = impl.options.io_threads;
  // Route workers *block* in await_reply for a backend round-trip, so the
  // pool is sized for in-flight requests, not cores. The pool readers
  // complete replies independently — a full worker pool delays new work,
  // it never deadlocks the fleet.
  reactor_options.workers =
      impl.options.io_workers > 0 ? impl.options.io_workers : 64;
  reactor_options.max_batch = impl.options.max_batch;
  reactor_options.max_message_bytes = impl.options.max_line_bytes;
  reactor_options.idle_timeout_seconds = impl.options.idle_timeout_seconds;

  rnet::ReactorCallbacks callbacks;
  callbacks.on_open = [&impl](const rnet::ConnPtr&) {
    impl.stat_connections.fetch_add(1, std::memory_order_relaxed);
  };
  callbacks.on_batch = [&impl](const rnet::ConnPtr& conn,
                               std::vector<rnet::Message> messages) {
    impl.process_batch(conn, std::move(messages));
  };
  callbacks.protocol_error_reply = [](rnet::WireMode mode,
                                      const std::string& message) {
    if (mode == rnet::WireMode::Line)
      return error_json(message, "") + "\n";
    return rnet::encode_frame(rnet::kFrameError,
                              io::binary_error_payload(-1, message, ""));
  };

  impl.reactor = std::make_unique<rnet::ReactorServer>(
      std::move(reactor_options), std::move(callbacks));
  impl.reactor->start();
  impl.self_endpoint =
      impl.options.advertise.empty()
          ? impl.options.host + ":" + std::to_string(impl.reactor->port())
          : impl.options.advertise;
  if (!impl.options.peers.empty()) {
    cluster::LeaderLease::Options lease_options;
    lease_options.self = impl.self_endpoint;
    lease_options.ttl = std::chrono::duration_cast<cluster::LeaseClock::duration>(
        std::chrono::duration<double, std::milli>(impl.options.lease_ttl_ms));
    impl.lease = std::make_unique<cluster::LeaderLease>(lease_options);
  }
  impl.stopping = false;
  impl.running = true;
  impl.health_thread = std::thread([&impl]() { impl.health_loop(); });
  if (impl.lease)
    impl.sync_thread = std::thread([&impl]() { impl.sync_loop(); });
}

void Router::stop() {
  Impl& impl = *impl_;
  if (impl.stopping.exchange(true)) return;
  if (!impl.running.load()) return;

  // 1. Drain the reactor: stop accepting and reading. Messages already
  // handed to workers keep flowing — the backend pools are still up, so
  // in-flight awaits complete and every accepted request is answered
  // before shutdown() flushes and joins.
  if (impl.reactor) {
    impl.reactor->begin_drain();
    impl.reactor->shutdown();
  }

  // 2. Watch relays exit on `stopping`.
  impl.reap_watch_threads(true);

  // 3. Only now tear down the transport.
  if (impl.health_thread.joinable()) impl.health_thread.join();
  if (impl.sync_thread.joinable()) impl.sync_thread.join();
  std::vector<std::shared_ptr<BackendPool>> snapshot;
  {
    std::lock_guard<std::mutex> lock(impl.pools_mutex);
    for (const auto& [endpoint, pool] : impl.pools) snapshot.push_back(pool);
  }
  for (const auto& pool : snapshot) pool->shutdown();
  // Drain the observability sinks: the tail of the slow log and trace file
  // must survive the SIGTERM that triggered this stop.
  impl.slow_file.flush();
  impl.traces.flush();
  impl.running = false;
}

bool Router::running() const noexcept { return impl_->running.load(); }

std::uint16_t Router::port() const noexcept {
  return impl_->reactor ? impl_->reactor->port() : 0;
}

RouterStats Router::stats() const {
  RouterStats out;
  out.connections = impl_->stat_connections.load(std::memory_order_relaxed);
  out.requests = impl_->stat_requests.load(std::memory_order_relaxed);
  out.errors = impl_->stat_errors.load(std::memory_order_relaxed);
  out.rejected = impl_->stat_rejected.load(std::memory_order_relaxed);
  out.l1_hits = impl_->stat_l1_hits.load(std::memory_order_relaxed);
  out.failovers = impl_->stat_failovers.load(std::memory_order_relaxed);
  out.epoch = impl_->membership.epoch();
  out.members = impl_->membership.size();
  out.joins = impl_->stat_joins.load(std::memory_order_relaxed);
  out.leaves = impl_->stat_leaves.load(std::memory_order_relaxed);
  out.evictions = impl_->stat_evictions.load(std::memory_order_relaxed);
  out.promotions = impl_->stat_promotions.load(std::memory_order_relaxed);
  out.replica_hits = impl_->stat_replica_hits.load(std::memory_order_relaxed);
  out.replica_puts = impl_->stat_replica_puts.load(std::memory_order_relaxed);
  out.promoted = impl_->hot_keys.promoted_count();
  if (impl_->lease) {
    const cluster::LeaseStatus status = impl_->lease->status();
    out.lease_holder = status.holder;
    out.term = status.term;
    out.leaseholder = status.held;
  } else {
    out.lease_holder = impl_->self_endpoint;
    out.leaseholder = true;  // standalone: the implicit lease is ours
  }
  out.lease_acquires =
      impl_->stat_lease_acquires.load(std::memory_order_relaxed);
  out.lease_renewals =
      impl_->stat_lease_renewals.load(std::memory_order_relaxed);
  out.redirects = impl_->stat_redirects.load(std::memory_order_relaxed);
  out.forwards = impl_->stat_forwards.load(std::memory_order_relaxed);
  out.syncs_sent = impl_->stat_syncs_sent.load(std::memory_order_relaxed);
  out.syncs_applied =
      impl_->stat_syncs_applied.load(std::memory_order_relaxed);
  for (const Impl::BackendSnapshot& backend : impl_->backend_snapshot()) {
    const PoolStats stats = backend.pool->stats();
    BackendHealth health;
    health.endpoint = backend.endpoint;
    health.alive = stats.alive;
    health.binary = stats.binary;
    health.is_static = backend.is_static;
    health.requests = stats.requests;
    health.failures = stats.failures;
    out.backends.push_back(std::move(health));
  }
  return out;
}

const std::shared_ptr<cache::ResultCache>& Router::l1() const noexcept {
  return impl_->l1;
}

// ---- route_forever --------------------------------------------------------

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

}  // namespace

int route_forever(const RouterOptions& options, std::ostream& log) {
  Router router(options);

  if (!options.cache_file.empty() && router.l1()) {
    std::string warning;
    const std::size_t loaded =
        router.l1()->load_file(options.cache_file, &warning);
    if (!warning.empty()) log << "cache-file: " << warning << std::endl;
    if (loaded > 0)
      log << "cache-file: reloaded " << loaded << " entries from "
          << options.cache_file << std::endl;
  }

  try {
    router.start();
  } catch (const std::exception& e) {
    log << "error: " << e.what() << "\n";
    return 1;
  }

  g_signal = 0;
  struct sigaction action{};
  action.sa_handler = on_signal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  log << "ebmf router listening on " << options.host << ":" << router.port()
      << " over " << options.backends.size() << " static backends"
      << (options.dynamic ? " (dynamic: join/leave/heartbeat enabled)" : "")
      << " (l1-mb=" << options.l1_mb
      << ", max-inflight=" << options.max_inflight
      << ", replicas=" << options.replicas << ")" << std::endl;
  if (!options.peers.empty()) {
    log << "fleet: " << options.peers.size() << " peers, lease-ttl="
        << options.lease_ttl_ms << "ms";
    if (!options.advertise.empty()) log << ", advertise=" << options.advertise;
    log << std::endl;
  }

  while (g_signal == 0) {
    timespec nap{0, 100 * 1000 * 1000};
    ::nanosleep(&nap, nullptr);
  }

  log << "signal " << static_cast<int>(g_signal) << " received, draining"
      << std::endl;
  router.stop();
  const RouterStats stats = router.stats();
  log << "routed " << stats.requests << " requests, " << stats.errors
      << " errors, " << stats.rejected << " rejected, " << stats.l1_hits
      << " l1 hits, " << stats.failovers << " failovers, across "
      << stats.connections << " connections" << std::endl;
  log << "cluster: epoch " << stats.epoch << ", " << stats.members
      << " members (" << stats.joins << " joins, " << stats.leaves
      << " leaves, " << stats.evictions << " evictions); " << stats.promotions
      << " promotions, " << stats.replica_hits << " replica hits, "
      << stats.replica_puts << " replica puts" << std::endl;
  if (!options.peers.empty())
    log << "fleet: term " << stats.term << ", holder "
        << (stats.lease_holder.empty() ? "<none>" : stats.lease_holder)
        << (stats.leaseholder ? " (this router)" : "") << "; "
        << stats.lease_acquires << " acquires, " << stats.lease_renewals
        << " renewals, " << stats.forwards << " forwards, " << stats.redirects
        << " redirects, " << stats.syncs_sent << " syncs sent, "
        << stats.syncs_applied << " applied" << std::endl;
  for (const BackendHealth& backend : stats.backends)
    log << "  backend " << backend.endpoint << ": "
        << (backend.alive ? "alive" : "down")
        << (backend.is_static ? " (static)" : " (announced)") << ", "
        << backend.requests << " requests, " << backend.failures
        << " failures" << std::endl;

  if (!options.cache_file.empty() && router.l1()) {
    std::string error;
    if (router.l1()->save_file(options.cache_file, &error)) {
      log << "cache-file: saved " << router.l1()->stats().entries
          << " entries to " << options.cache_file << std::endl;
    } else {
      log << "cache-file: " << error << std::endl;
    }
  }
  return 0;
}

}  // namespace ebmf::router
