#pragma once
/// \file ring.h
/// \brief Rendezvous (highest-random-weight) hashing over a backend set —
/// the shard map of the `ebmf route` front tier.
///
/// The router's whole value is cache affinity: every permuted repeat of a
/// canonical pattern must land on the same backend so that backend's result
/// cache sees all of them. HRW hashing gives that with the two properties a
/// failover tier needs and a mod-N table lacks:
///
///  * **Minimal movement.** Each key independently ranks every backend by
///    score(backend, key); adding a backend only steals the keys it now
///    wins, removing one only re-homes the keys it owned (each ~1/N of the
///    space). No other key moves, so the surviving backends keep their
///    warm caches through membership changes.
///  * **Built-in failover order.** The full descending-score ranking is a
///    per-key preference list: when the owner is down, the next live
///    backend in the ranking takes the key — deterministically, so even
///    failed-over repeats keep hitting one (secondary) cache.
///
/// Scores mix a per-backend seed (split-mix of its endpoint string's FNV
/// hash) with the 64-bit key; the ring is a value type, cheap to copy, and
/// does no locking — the router owns membership and health elsewhere.

#include <cstdint>
#include <string>
#include <vector>

namespace ebmf::router {

/// FNV-1a of an arbitrary string — the ring's backend-id hash, also used
/// by the router to key masked (pass-through) patterns by raw text.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& bytes) noexcept;

/// The HRW score of one (backend seed, key) pair: a split-mix style
/// finalizer over the xor, so one backend's scores across keys — and one
/// key's scores across backends — are independently spread.
[[nodiscard]] std::uint64_t hrw_score(std::uint64_t backend_seed,
                                      std::uint64_t key) noexcept;

/// An HRW backend set. Indices are stable: add() appends and returns the
/// new index, remove() erases (later indices shift — the router only
/// mutates membership at startup, so it never observes the shift).
class RendezvousRing {
 public:
  /// Register a backend under its identity string (endpoint "host:port").
  /// Returns its index. Duplicate ids are rejected (returns the existing
  /// index) — two entries with one seed would shadow each other.
  std::size_t add(const std::string& id);

  /// Remove a backend by id; false when unknown.
  bool remove(const std::string& id);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] const std::string& id(std::size_t index) const {
    return nodes_[index].id;
  }

  /// The owning backend index for `key` (highest score). Precondition:
  /// !empty().
  [[nodiscard]] std::size_t owner(std::uint64_t key) const;

  /// All backend indices ordered by descending score for `key` — the
  /// failover preference list (owner first). Ties break by index, so the
  /// order is total and deterministic.
  [[nodiscard]] std::vector<std::size_t> ordered(std::uint64_t key) const;

 private:
  struct Node {
    std::string id;
    std::uint64_t seed;
  };
  std::vector<Node> nodes_;
};

}  // namespace ebmf::router
