#pragma once
/// \file router.h
/// \brief `ebmf::router` — the canon-key sharding front tier
/// (`ebmf route`): one address that makes N `ebmf serve` backends behave
/// like a single coherent result cache.
///
/// The paper's FTQC workload is dominated by permuted repeats of a small
/// set of canonical factorization patterns. A single server already
/// collapses those through `ebmf::canon` + the sharded LRU; the router
/// extends the same idea across processes and machines:
///
///  * **Canonical sharding.** The router speaks the exact client protocol
///    (line-JSON, request order preserved per connection) and computes
///    `canon::CacheKey` *locally* for every dense request, then picks the
///    backend by rendezvous hashing on the key (ring.h). Permuted
///    duplicates therefore always land on the same backend's cache, no
///    matter which client sent them. Forwarded requests carry the
///    *canonical* pattern — backends answer in canonical space, which is
///    what the router's own cache stores — and the router lifts the
///    returned partition back through the requester's permutation record
///    before replying (certificates transfer exactly; every lifted
///    partition is re-validated).
///  * **L1 cache.** An in-process `ebmf::cache::ResultCache` sits in front
///    of the fan-out: a repeat the router has already seen is answered
///    without touching a backend (`routed.l1: "hit"` telemetry), and the
///    snapshot persistence (`--cache-file`) survives restarts.
///  * **Failover.** Per-backend persistent connection pools (pool.h)
///    pipeline requests under router-assigned ids. A broken backend fails
///    its in-flight replies immediately; the owning connection threads
///    resubmit to the next live backend in the key's HRW order, so a
///    killed backend loses no accepted request. Degraded replies carry
///    `routed.failover` telemetry; reconnects follow exponential backoff
///    driven by a health thread.
///  * **Admission control.** The same global max-inflight scheme as
///    service.cpp: past the limit, requests get an `overloaded` error
///    instead of queueing unboundedly.
///
/// Masked (don't-care) requests bypass canonicalization — they are
/// forwarded verbatim (keyed by raw pattern text, so repeats still share a
/// backend) and their replies pass through untouched. `{"op":"stats"}`
/// answers locally with router counters, L1 counters, cluster state, and
/// per-backend health.
///
/// **Live membership (PR 5, `--dynamic`).** The backend set is no longer
/// frozen at startup: backends announce themselves with
/// `{"op":"join","endpoint":...}` (see `ebmf serve --announce`), heartbeat
/// periodically, and are evicted after a missed-heartbeat grace window
/// (cluster/membership.h). Every membership change publishes a fresh
/// epoch-stamped view (cluster/view.h) whose HRW ring new requests route
/// on, while in-flight requests finish against the view they started with
/// — so a join or leave under load loses no accepted request.
///
/// **Hot-key replication.** The router counts per-key hits
/// (cluster/replica.h); a key past `--promote-after` is promoted to the
/// top-`--replicas` backends of its HRW order: results are fanned to every
/// replica as `{"op":"put"}` cache writes, and reads served by a surviving
/// non-primary replica carry `cluster.replica_hit` telemetry — a killed
/// backend no longer turns the hottest patterns cold.
///
/// **Router fleet (PR 8, `--peers`).** The router itself is no longer a
/// single point of failure: N routers form a fleet over the peer verbs
/// (`peer.hello`/`peer.lease`/`peer.sync`). One holds the leader lease
/// (cluster/lease.h) and owns every cluster *write* — joins, leaves,
/// missed-heartbeat eviction — while replicating the member table, epoch,
/// and promoted hot-key set to followers on the sync cadence. Followers
/// serve all *read* traffic (solves, stats) from the replicated view,
/// forward membership writes to the leaseholder, and answer with an
/// epoch-stamped `{"redirect":"host:port","epoch":E,"term":T}` when the
/// leaseholder is unreachable. When the leaseholder dies, a follower's
/// next lease bid wins within one TTL and it takes over with the current
/// view and warm hot keys — no cold restart. Backends announce to every
/// router (`ebmf serve --announce=a,b`), clients fail over across
/// `--connect=a,b` address lists.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "service/cache.h"

namespace ebmf::router {

/// Knobs of one router instance (CLI flags map 1:1).
struct RouterOptions {
  std::uint16_t port = 7500;       ///< 0 = pick an ephemeral port.
  std::string host = "127.0.0.1";  ///< Bind address.
  /// Backend endpoints ("host:port") configured at startup. These are
  /// *static* members: never heartbeat-evicted. A non-dynamic router
  /// requires at least one; a dynamic router may start empty and let
  /// backends join.
  std::vector<std::string> backends;
  /// Accept join/leave/heartbeat membership verbs and run missed-heartbeat
  /// eviction (`ebmf route --dynamic`).
  bool dynamic = false;
  /// Fellow routers of the fleet ("host:port", *excluding* this one).
  /// Empty = standalone: this router always holds the (implicit) lease.
  std::vector<std::string> peers;
  /// This router's own endpoint as peers should see it (the lease-bid
  /// identity and redirect target). Defaults to host:port of the bound
  /// listener; required when binding a wildcard host with --peers.
  std::string advertise;
  /// Leader-lease lifetime. A follower bids for the lease after the
  /// holder's renewals have been silent this long — the fleet's failover
  /// budget. Keep it under the membership grace window so a router
  /// takeover never costs a backend eviction.
  double lease_ttl_ms = 1500.0;
  /// Lease-renewal + peer delta-sync cadence (0 = lease_ttl_ms / 3).
  double sync_interval_ms = 0.0;
  /// Replica set size for promoted hot keys (top-R of the key's HRW
  /// order). 1 disables replication (a key lives on its owner only).
  std::size_t replicas = 2;
  /// Hits before a key is promoted to replicated (0 = never promote).
  std::uint64_t promote_after = 8;
  /// Expected announce heartbeat cadence; grace_ms defaults off it.
  double heartbeat_ms = 500.0;
  /// Missed-heartbeat eviction window (0 = 4 * heartbeat_ms).
  double grace_ms = 0.0;
  double l1_mb = 64.0;        ///< Router-local result cache (0 = off).
  std::string cache_file;     ///< L1 snapshot path ("" = no persistence).
  std::size_t max_inflight = 256;  ///< Global admission limit.
  std::size_t max_batch = 32;      ///< Pipelined lines read per batch.
  std::size_t max_line_bytes = 4u << 20;  ///< Oversized-line guard.
  std::size_t io_threads = 2;  ///< Reactor event-loop threads.
  /// Reactor handler threads. Router handlers *block* in await_reply (pool
  /// reader threads complete replies independently, so this is bounded
  /// concurrency, not a deadlock risk) — the default is therefore much
  /// larger than the serve tier's compute-bound auto value. 0 = auto (64).
  std::size_t io_workers = 0;
  /// Reap client connections idle this long (half-open peers). 0 = never.
  double idle_timeout_seconds = 0.0;
  /// Negotiate the binary frame protocol on backend pool connections and
  /// use the canonical-key fast path for dense solves
  /// (`ebmf route --no-binary` turns it off; JSON lines then carry all
  /// router→backend traffic exactly as before the upgrade existed).
  bool binary_backend = true;
  std::size_t pool_connections = 1;  ///< Sockets per backend.
  /// Give up on a backend reply after this long and fail over (a hung
  /// backend must not wedge a client thread forever). 0 = wait forever.
  double reply_timeout_seconds = 30.0;
  double backoff_base_ms = 50.0;   ///< Reconnect backoff start.
  double backoff_max_ms = 2000.0;  ///< Reconnect backoff ceiling.
  double health_interval_ms = 100.0;  ///< Health/reconnect thread cadence.
  /// Trace every request (`ebmf route --trace`): requests without a client
  /// trace context get a fresh one at the router, so the whole fleet's
  /// latency breakdown is observable without client changes. Client-sent
  /// contexts are always honored regardless of this flag.
  bool trace = false;
  /// Slow-request log (`--slow-ms`): any routed solve whose wall-clock
  /// exceeds this many milliseconds is appended — with trace id, serving
  /// backend, strategy, and per-span timings — as one JSON line to
  /// `slow_log` (or stderr when empty). 0 = off.
  double slow_ms = 0.0;
  std::string slow_log;  ///< `--slow-log=PATH`; empty = stderr.
  /// Completed traces additionally append to this JSON-lines file
  /// (`--trace-file=PATH`); empty = ring only.
  std::string trace_file;
};

/// Point-in-time health + counters of one backend.
struct BackendHealth {
  std::string endpoint;
  bool alive = false;
  bool binary = false;         ///< Pool negotiated the frame protocol.
  bool is_static = false;      ///< Configured at startup (never evicted).
  std::uint64_t requests = 0;  ///< Lines submitted to this backend.
  std::uint64_t failures = 0;  ///< Connection breaks observed.
};

/// Router counters (stats verb, drain report, tests).
struct RouterStats {
  std::uint64_t connections = 0;  ///< Client connections accepted.
  std::uint64_t requests = 0;     ///< Lines answered with a report.
  std::uint64_t errors = 0;       ///< Lines answered with an error.
  std::uint64_t rejected = 0;     ///< Shed by admission control.
  std::uint64_t l1_hits = 0;      ///< Answered from the router's cache.
  std::uint64_t failovers = 0;    ///< Resubmits after a backend failure.
  // -- cluster control plane ---------------------------------------------
  std::uint64_t epoch = 0;        ///< Current membership epoch.
  std::size_t members = 0;        ///< Registered members right now.
  std::uint64_t joins = 0;        ///< Accepted join verbs (new members).
  std::uint64_t leaves = 0;       ///< Accepted leave verbs.
  std::uint64_t evictions = 0;    ///< Members dropped by missed heartbeats.
  std::uint64_t promotions = 0;   ///< Keys promoted to replicated.
  std::uint64_t replica_hits = 0; ///< Promoted reads served off-primary.
  std::uint64_t replica_puts = 0; ///< Cache writes fanned to replicas.
  std::size_t promoted = 0;       ///< Keys in the promoted set right now.
  // -- router fleet (leader lease) ---------------------------------------
  std::string lease_holder;       ///< Current holder ("" = none known).
  std::uint64_t term = 0;         ///< Current lease term.
  bool leaseholder = false;       ///< This router holds a valid lease.
  std::uint64_t lease_acquires = 0;  ///< Takeovers (first grant of a term).
  std::uint64_t lease_renewals = 0;  ///< Successful renewals while held.
  std::uint64_t redirects = 0;    ///< Writes answered with {"redirect":...}.
  std::uint64_t forwards = 0;     ///< Writes proxied to the leaseholder.
  std::uint64_t syncs_sent = 0;   ///< peer.sync snapshots delivered.
  std::uint64_t syncs_applied = 0;  ///< peer.sync snapshots adopted here.
  std::vector<BackendHealth> backends;
};

/// The front tier. Thread-safe; start() once, stop() once (destructor
/// stops too).
class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Bind, connect the backend pools (best effort — a down backend just
  /// starts in backoff), and launch the accept/health threads. Throws
  /// std::runtime_error on an unusable address, a malformed endpoint, or
  /// no backends on a non-dynamic router (a dynamic one may start empty
  /// and wait for joins).
  void start();

  /// Graceful drain: stop accepting, close backend pools (in-flight
  /// replies fail fast), answer what can be answered, join every thread.
  /// Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// The port actually bound (resolves port 0 after start()).
  [[nodiscard]] std::uint16_t port() const noexcept;

  [[nodiscard]] RouterStats stats() const;

  /// The router-local result cache (null when --l1-mb=0).
  [[nodiscard]] const std::shared_ptr<cache::ResultCache>& l1()
      const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Run a router until SIGTERM/SIGINT, then drain and report on `log`.
/// Returns a process exit code (0 on a clean drain). Loads/saves the L1
/// snapshot when options.cache_file is set. The `ebmf route` entry point.
int route_forever(const RouterOptions& options, std::ostream& log);

}  // namespace ebmf::router
