#pragma once
/// \file router.h
/// \brief `ebmf::router` — the canon-key sharding front tier
/// (`ebmf route`): one address that makes N `ebmf serve` backends behave
/// like a single coherent result cache.
///
/// The paper's FTQC workload is dominated by permuted repeats of a small
/// set of canonical factorization patterns. A single server already
/// collapses those through `ebmf::canon` + the sharded LRU; the router
/// extends the same idea across processes and machines:
///
///  * **Canonical sharding.** The router speaks the exact client protocol
///    (line-JSON, request order preserved per connection) and computes
///    `canon::CacheKey` *locally* for every dense request, then picks the
///    backend by rendezvous hashing on the key (ring.h). Permuted
///    duplicates therefore always land on the same backend's cache, no
///    matter which client sent them. Forwarded requests carry the
///    *canonical* pattern — backends answer in canonical space, which is
///    what the router's own cache stores — and the router lifts the
///    returned partition back through the requester's permutation record
///    before replying (certificates transfer exactly; every lifted
///    partition is re-validated).
///  * **L1 cache.** An in-process `ebmf::cache::ResultCache` sits in front
///    of the fan-out: a repeat the router has already seen is answered
///    without touching a backend (`routed.l1: "hit"` telemetry), and the
///    snapshot persistence (`--cache-file`) survives restarts.
///  * **Failover.** Per-backend persistent connection pools (pool.h)
///    pipeline requests under router-assigned ids. A broken backend fails
///    its in-flight replies immediately; the owning connection threads
///    resubmit to the next live backend in the key's HRW order, so a
///    killed backend loses no accepted request. Degraded replies carry
///    `routed.failover` telemetry; reconnects follow exponential backoff
///    driven by a health thread.
///  * **Admission control.** The same global max-inflight scheme as
///    service.cpp: past the limit, requests get an `overloaded` error
///    instead of queueing unboundedly.
///
/// Masked (don't-care) requests bypass canonicalization — they are
/// forwarded verbatim (keyed by raw pattern text, so repeats still share a
/// backend) and their replies pass through untouched. `{"op":"stats"}`
/// answers locally with router counters, L1 counters, and per-backend
/// health.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "service/cache.h"

namespace ebmf::router {

/// Knobs of one router instance (CLI flags map 1:1).
struct RouterOptions {
  std::uint16_t port = 7500;       ///< 0 = pick an ephemeral port.
  std::string host = "127.0.0.1";  ///< Bind address.
  /// Backend endpoints ("host:port"), the shard set. At least one.
  std::vector<std::string> backends;
  double l1_mb = 64.0;        ///< Router-local result cache (0 = off).
  std::string cache_file;     ///< L1 snapshot path ("" = no persistence).
  std::size_t max_inflight = 256;  ///< Global admission limit.
  std::size_t max_batch = 32;      ///< Pipelined lines read per batch.
  std::size_t max_line_bytes = 4u << 20;  ///< Oversized-line guard.
  std::size_t pool_connections = 1;  ///< Sockets per backend.
  /// Give up on a backend reply after this long and fail over (a hung
  /// backend must not wedge a client thread forever). 0 = wait forever.
  double reply_timeout_seconds = 30.0;
  double backoff_base_ms = 50.0;   ///< Reconnect backoff start.
  double backoff_max_ms = 2000.0;  ///< Reconnect backoff ceiling.
  double health_interval_ms = 100.0;  ///< Health/reconnect thread cadence.
};

/// Point-in-time health + counters of one backend.
struct BackendHealth {
  std::string endpoint;
  bool alive = false;
  std::uint64_t requests = 0;  ///< Lines submitted to this backend.
  std::uint64_t failures = 0;  ///< Connection breaks observed.
};

/// Router counters (stats verb, drain report, tests).
struct RouterStats {
  std::uint64_t connections = 0;  ///< Client connections accepted.
  std::uint64_t requests = 0;     ///< Lines answered with a report.
  std::uint64_t errors = 0;       ///< Lines answered with an error.
  std::uint64_t rejected = 0;     ///< Shed by admission control.
  std::uint64_t l1_hits = 0;      ///< Answered from the router's cache.
  std::uint64_t failovers = 0;    ///< Resubmits after a backend failure.
  std::vector<BackendHealth> backends;
};

/// The front tier. Thread-safe; start() once, stop() once (destructor
/// stops too).
class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Bind, connect the backend pools (best effort — a down backend just
  /// starts in backoff), and launch the accept/health threads. Throws
  /// std::runtime_error on an unusable address, no backends, or a
  /// malformed endpoint.
  void start();

  /// Graceful drain: stop accepting, close backend pools (in-flight
  /// replies fail fast), answer what can be answered, join every thread.
  /// Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// The port actually bound (resolves port 0 after start()).
  [[nodiscard]] std::uint16_t port() const noexcept;

  [[nodiscard]] RouterStats stats() const;

  /// The router-local result cache (null when --l1-mb=0).
  [[nodiscard]] const std::shared_ptr<cache::ResultCache>& l1()
      const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Run a router until SIGTERM/SIGINT, then drain and report on `log`.
/// Returns a process exit code (0 on a clean drain). Loads/saves the L1
/// snapshot when options.cache_file is set. The `ebmf route` entry point.
int route_forever(const RouterOptions& options, std::ostream& log);

}  // namespace ebmf::router
