#include "core/bounds.h"

#include <algorithm>
#include <unordered_set>

#include "linalg/rank.h"

namespace ebmf {

std::size_t real_rank(const BinaryMatrix& m) {
  return ebmf::real_rank(m.row_vectors(), m.cols());
}

std::size_t distinct_nonzero_rows(const BinaryMatrix& m) {
  std::unordered_set<BitVec, BitVecHash> seen;
  for (const auto& r : m.row_vectors())
    if (r.any()) seen.insert(r);
  return seen.size();
}

std::size_t trivial_upper_bound(const BinaryMatrix& m) {
  return std::min(distinct_nonzero_rows(m),
                  distinct_nonzero_rows(m.transposed()));
}

}  // namespace ebmf
