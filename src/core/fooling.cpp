#include "core/fooling.h"

#include <algorithm>

#include "sat/cardinality.h"
#include "sat/solver.h"
#include "support/rng.h"

namespace ebmf {

namespace {

/// Two 1-cells may coexist in a fooling set iff some crossing cell is 0.
bool fooling_compatible(const BinaryMatrix& m,
                        std::pair<std::size_t, std::size_t> a,
                        std::pair<std::size_t, std::size_t> b) {
  return !m.test(a.first, b.second) || !m.test(b.first, a.second);
}

}  // namespace

bool is_fooling_set(const BinaryMatrix& m, const CellSet& cells) {
  for (std::size_t x = 0; x < cells.size(); ++x) {
    if (!m.test(cells[x].first, cells[x].second)) return false;
    for (std::size_t y = x + 1; y < cells.size(); ++y)
      if (!fooling_compatible(m, cells[x], cells[y])) return false;
  }
  return true;
}

CellSet greedy_fooling_set(const BinaryMatrix& m, std::size_t trials,
                           std::uint64_t seed) {
  CellSet all = m.ones();
  CellSet best;
  Rng rng(seed);
  for (std::size_t t = 0; t < std::max<std::size_t>(trials, 1); ++t) {
    if (t != 0) rng.shuffle(all);
    CellSet cur;
    for (const auto& cell : all) {
      const bool ok = std::all_of(cur.begin(), cur.end(), [&](const auto& c) {
        return fooling_compatible(m, cell, c);
      });
      if (ok) cur.push_back(cell);
    }
    if (cur.size() > best.size()) best = std::move(cur);
  }
  return best;
}

CellSet max_fooling_set(const BinaryMatrix& m, const Budget& budget) {
  CellSet best = greedy_fooling_set(m);
  const CellSet cells = m.ones();
  if (cells.empty()) return best;
  // Fooling cells occupy distinct rows and columns, and there are at most
  // |ones| of them.
  const std::size_t cap =
      std::min({m.rows(), m.cols(), cells.size()});

  while (best.size() < cap) {
    const std::size_t target = best.size() + 1;
    // Fresh solver per target keeps the encoding simple; instances are tiny
    // (≤ #ones variables).
    sat::Solver solver;
    std::vector<sat::Lit> sel;
    sel.reserve(cells.size());
    for (std::size_t e = 0; e < cells.size(); ++e)
      sel.push_back(sat::pos(solver.new_var()));
    for (std::size_t x = 0; x < cells.size(); ++x)
      for (std::size_t y = x + 1; y < cells.size(); ++y)
        if (!fooling_compatible(m, cells[x], cells[y]))
          solver.add_clause(sel[x].neg(), sel[y].neg());
    sat::add_at_least_k(solver, sel, target);

    const auto result = solver.solve({}, budget);
    if (result != sat::SolveResult::Sat) break;  // Unsat: maximum; Unknown: give up
    CellSet found;
    for (std::size_t e = 0; e < cells.size(); ++e)
      if (solver.model_true(sel[e])) found.push_back(cells[e]);
    EBMF_ENSURES(found.size() >= target);
    EBMF_ENSURES(is_fooling_set(m, found));
    best = std::move(found);
  }
  return best;
}

}  // namespace ebmf
