#pragma once
/// \file row_packing.h
/// \brief Row packing (Algorithm 2 of the paper): the fast EBMF heuristic at
/// the heart of SAP.
///
/// The matrix is processed row by row, maintaining a *normal set basis*: a
/// list of column sets (basis vectors), each owning one rectangle. Each row
/// is greedily decomposed into a disjoint union of existing basis vectors
/// (whose rectangles then grow vertically); any residue becomes a new basis
/// vector — after first *shrinking* every existing basis vector that
/// contains it (the "basis update", lines 9–16), which keeps basis vectors
/// small and future packings likelier to succeed.
///
/// Because the greedy packing follows basis order, quality depends on row
/// order; the heuristic is therefore run over many row shuffles (and on the
/// transpose) keeping the best result. The paper discusses two
/// time-saving compromises — disabling the basis update and replacing
/// shuffles with an ascending-popcount order — and reports both hurt
/// quality; both are exposed here as options so the ablation benchmark can
/// quantify that claim.

#include <cstdint>
#include <optional>

#include "core/partition.h"
#include "support/budget.h"

namespace ebmf {

/// Row orderings for the packing passes.
enum class RowOrder {
  Shuffle,        ///< Fresh random permutation per trial (paper default).
  SortedByOnes,   ///< Ascending popcount, deterministic (paper's compromise).
  AsIs,           ///< Matrix order, deterministic.
};

/// Options controlling row_packing_ebmf.
struct RowPackingOptions {
  std::size_t trials = 100;     ///< Packing passes per orientation.
  std::uint64_t seed = 1;       ///< Shuffle seed (deterministic streams).
  RowOrder order = RowOrder::Shuffle;
  bool basis_update = true;     ///< Enable lines 9–16 of Algorithm 2.
  bool use_transpose = true;    ///< Also pack Mᵀ, keep the better result.
  std::size_t stop_at = 0;      ///< Stop early when |P| ≤ stop_at (0 = never).
  Budget budget;                ///< Shared wall-clock/cancellation budget.
};

/// Outcome of a row-packing run.
struct RowPackingResult {
  Partition partition;          ///< Best (smallest) valid EBMF found.
  std::size_t trials_run = 0;   ///< Total passes executed (both orientations).
  bool from_transpose = false;  ///< Best came from the Mᵀ orientation.
  double seconds = 0.0;         ///< Wall-clock time spent.
};

namespace detail {
/// Verify `row_order` is a permutation of [0, rows); ContractViolation if not.
void check_row_order(std::size_t rows,
                     const std::vector<std::size_t>& row_order);
}  // namespace detail

/// One packing pass over the rows of `m` taken in `row_order`.
/// `row_order` must be a permutation of [0, m.rows()). The returned
/// partition is expressed in original row indices (un-shuffled) and is
/// always a valid EBMF of `m` with size ≤ #distinct nonzero rows.
Partition row_packing_pass(const BinaryMatrix& m,
                           const std::vector<std::size_t>& row_order,
                           bool basis_update = true);

/// Full heuristic: multiple shuffled passes on M (and Mᵀ when enabled),
/// returning the smallest partition found.
RowPackingResult row_packing_ebmf(const BinaryMatrix& m,
                                  const RowPackingOptions& options = {});

}  // namespace ebmf
