#pragma once
/// \file partition.h
/// \brief Rectangles (rank-1 binary blocks) and rectangle partitions — the
/// objects an EBMF produces — plus exact validation.
///
/// A Rectangle X'×Y' is what one AOD configuration can address (Fig. 1a of
/// the paper): a set of rows crossed with a set of columns. A Partition is
/// an ordered list of rectangles; it is a *valid EBMF of M* when the
/// rectangles are pairwise disjoint, cover every 1 of M, and cover no 0.
/// The partition's size is the addressing depth the paper minimizes.

#include <string>
#include <vector>

#include "core/matrix.h"
#include "support/bitvec.h"

namespace ebmf {

/// A combinatorial rectangle: rows × cols, both as bit sets.
///
/// Corresponds to one term h·wᵀ of the factorization and to one AOD
/// configuration (rows driven + columns driven).
struct Rectangle {
  BitVec rows;  ///< Selected rows (length m).
  BitVec cols;  ///< Selected columns (length n).

  /// Cell membership test.
  [[nodiscard]] bool contains(std::size_t i, std::size_t j) const {
    return rows.test(i) && cols.test(j);
  }

  /// Number of cells (|rows| · |cols|).
  [[nodiscard]] std::size_t cell_count() const {
    return rows.count() * cols.count();
  }

  /// True when the rectangle addresses no cell.
  [[nodiscard]] bool empty() const { return rows.none() || cols.none(); }

  /// The transposed rectangle (for solutions computed on Mᵀ).
  [[nodiscard]] Rectangle transposed() const { return Rectangle{cols, rows}; }

  friend bool operator==(const Rectangle& a, const Rectangle& b) noexcept {
    return a.rows == b.rows && a.cols == b.cols;
  }
};

/// An ordered list of rectangles; the EBMF / addressing schedule.
using Partition = std::vector<Rectangle>;

/// Result of validating a partition against a matrix.
struct ValidationResult {
  bool ok = false;
  std::string reason;  ///< Human-readable diagnosis when !ok.

  explicit operator bool() const noexcept { return ok; }
};

/// Check that `p` is an exact rectangle partition of the 1s of `m`:
///  * every rectangle's rows/cols bit vectors have the right lengths,
///  * no rectangle is empty,
///  * no rectangle covers a 0 of `m`,
///  * every 1 of `m` is covered exactly once (disjointness + coverage).
ValidationResult validate_partition(const BinaryMatrix& m, const Partition& p);

/// Materialize the union of rectangles as a matrix (useful in tests; ignores
/// overlap — use validate_partition for exactness).
BinaryMatrix partition_union(const Partition& p, std::size_t rows,
                             std::size_t cols);

/// Transpose every rectangle (solution on Mᵀ → solution on M).
Partition transposed(const Partition& p);

/// Pretty-print a partition as the matrix with each cell labeled by its
/// rectangle index ('.' for zeros); rectangles beyond 62 reuse symbols.
std::string render_partition(const BinaryMatrix& m, const Partition& p);

}  // namespace ebmf
