#include "core/brute_force.h"

#include <algorithm>

#include "core/bounds.h"
#include "core/trivial.h"

namespace ebmf {

namespace {

/// Depth-first search over canonical label assignments.
class LabelSearch {
 public:
  LabelSearch(const BinaryMatrix& m, std::size_t bound, const Budget& budget)
      : m_(&m),
        budget_(&budget),
        ones_(m.ones()),
        bound_(bound),
        labels_(ones_.size(), 0) {}

  /// Find any exact partition into at most `bound_` rectangles.
  bool run() { return assign(0, 0); }

  /// True when the search stopped on the budget, not on exhaustion.
  [[nodiscard]] bool aborted() const { return aborted_; }

  /// Reconstruct the partition from the found labeling.
  [[nodiscard]] Partition partition(std::size_t used) const {
    Partition p(used, Rectangle{BitVec(m_->rows()), BitVec(m_->cols())});
    for (std::size_t e = 0; e < ones_.size(); ++e) {
      p[labels_[e]].rows.set(ones_[e].first);
      p[labels_[e]].cols.set(ones_[e].second);
    }
    return p;
  }

  [[nodiscard]] std::size_t used() const { return used_; }

 private:
  /// Can cell e join label t given cells already labeled?
  /// Necessary local condition from Eq. 1: for every cell e' = (i',j')
  /// already in t, both crossing cells (i,j') and (i',j) must be 1 in M.
  [[nodiscard]] bool compatible(std::size_t e, std::size_t t) const {
    const auto [i, j] = ones_[e];
    for (std::size_t f = 0; f < e; ++f) {
      if (labels_[f] != t) continue;
      const auto [fi, fj] = ones_[f];
      if (!m_->test(i, fj) || !m_->test(fi, j)) return false;
    }
    return true;
  }

  /// Final exactness check: each label class must be exactly rows×cols.
  [[nodiscard]] bool classes_are_rectangles(std::size_t used) const {
    const Partition p = partition(used);
    std::size_t covered = 0;
    for (const auto& r : p) covered += r.cell_count();
    // Compatibility pruning already guarantees every class's closure is all
    // 1s and classes are disjoint within a cell; exactness additionally
    // needs the rectangle closures to be disjoint *and* total.
    if (covered != ones_.size()) return false;
    return static_cast<bool>(validate_partition(*m_, p));
  }

  bool assign(std::size_t e, std::size_t used) {
    ++nodes_;
    if ((budget_->max_nodes != 0 && nodes_ > budget_->max_nodes) ||
        ((nodes_ & 0x3ff) == 0 && budget_->exhausted())) {
      aborted_ = true;
      return false;
    }
    if (e == ones_.size()) {
      if (!classes_are_rectangles(used)) return false;
      used_ = used;
      return true;
    }
    // Try existing labels, then (canonically) one new label.
    for (std::size_t t = 0; t < used; ++t) {
      if (!compatible(e, t)) continue;
      labels_[e] = t;
      if (assign(e + 1, used)) return true;
    }
    if (used < bound_) {
      labels_[e] = used;
      if (assign(e + 1, used + 1)) return true;
    }
    return false;
  }

  const BinaryMatrix* m_;
  const Budget* budget_;
  std::vector<std::pair<std::size_t, std::size_t>> ones_;
  std::size_t bound_;
  std::vector<std::size_t> labels_;
  std::size_t used_ = 0;
  std::uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

std::optional<BruteForceResult> brute_force_ebmf(const BinaryMatrix& m,
                                                 std::size_t max_rank,
                                                 const Budget& budget) {
  if (m.is_zero()) return BruteForceResult{0, {}};
  const std::size_t cap =
      max_rank == 0 ? trivial_upper_bound(m) : max_rank;
  for (std::size_t b = 1; b <= cap; ++b) {
    LabelSearch search(m, b, budget);
    if (search.run()) {
      BruteForceResult result;
      result.binary_rank = search.used();
      result.partition = search.partition(search.used());
      EBMF_ENSURES(static_cast<bool>(validate_partition(m, result.partition)));
      return result;
    }
    if (search.aborted()) return std::nullopt;  // budget ran out mid-proof
  }
  return std::nullopt;
}

}  // namespace ebmf
