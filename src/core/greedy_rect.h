#pragma once
/// \file greedy_rect.h
/// \brief Greedy rectangle extraction — a classic biclique-cover-style
/// baseline heuristic, independent of row packing.
///
/// Visit rows in a (shuffled) order; a visited row's still-uncovered 1s
/// become a rectangle's column set, grown vertically to every row whose
/// uncovered 1s can host the whole set. Unlike row packing it never splits
/// a row's residue across existing rectangles — each rectangle is extracted
/// whole — so it explores a genuinely different part of the design space.
///
/// Quality sits between the trivial heuristic and row packing on most
/// inputs (it cannot revise earlier choices the way the basis update
/// does); it is included as an independent baseline for the ablation
/// benchmark and as a cross-check in tests.

#include "core/partition.h"
#include "core/row_packing.h"

namespace ebmf {

/// One greedy extraction pass, seeding rows in `row_order`.
Partition greedy_rectangles_pass(const BinaryMatrix& m,
                                 const std::vector<std::size_t>& row_order);

/// Multi-trial greedy extraction (shuffled seeds, best kept; transpose
/// orientation included when options.use_transpose).
RowPackingResult greedy_rectangles(const BinaryMatrix& m,
                                   const RowPackingOptions& options = {});

}  // namespace ebmf
