#include "core/preprocess.h"

#include <numeric>
#include <unordered_map>

namespace ebmf {

namespace {

/// Group indices of equal nonzero BitVecs, in first-occurrence order.
std::vector<std::vector<std::size_t>> group_equal_rows(
    const std::vector<BitVec>& rows) {
  std::unordered_map<BitVec, std::size_t, BitVecHash> index_of;
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].none()) continue;
    auto [it, inserted] = index_of.try_emplace(rows[i], groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }
  return groups;
}

/// Disjoint-set forest for the component split.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

DuplicateReduction reduce_duplicates(const BinaryMatrix& m) {
  DuplicateReduction out;
  out.original_rows = m.rows();
  out.original_cols = m.cols();

  // Pass 1: group duplicate rows.
  out.row_groups = group_equal_rows(m.row_vectors());

  // Pass 2: group duplicate columns of the row-reduced matrix.
  BinaryMatrix row_reduced(out.row_groups.size(), m.cols());
  for (std::size_t i = 0; i < out.row_groups.size(); ++i)
    for (std::size_t j = m.row(out.row_groups[i][0]).find_first();
         j < m.cols(); j = m.row(out.row_groups[i][0]).find_next(j))
      row_reduced.set(i, j);
  out.col_groups = group_equal_rows(row_reduced.transposed().row_vectors());

  out.reduced = BinaryMatrix(out.row_groups.size(), out.col_groups.size());
  for (std::size_t i = 0; i < out.row_groups.size(); ++i)
    for (std::size_t j = 0; j < out.col_groups.size(); ++j)
      if (row_reduced.test(i, out.col_groups[j][0])) out.reduced.set(i, j);
  return out;
}

Partition expand_partition(const Partition& p, const DuplicateReduction& r) {
  Partition out;
  out.reserve(p.size());
  for (const Rectangle& rect : p) {
    Rectangle big{BitVec(r.original_rows), BitVec(r.original_cols)};
    for (std::size_t i = rect.rows.find_first(); i < rect.rows.size();
         i = rect.rows.find_next(i))
      for (std::size_t orig : r.row_groups[i]) big.rows.set(orig);
    for (std::size_t j = rect.cols.find_first(); j < rect.cols.size();
         j = rect.cols.find_next(j))
      for (std::size_t orig : r.col_groups[j]) big.cols.set(orig);
    out.push_back(std::move(big));
  }
  return out;
}

std::vector<Component> split_components(const BinaryMatrix& m) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  // Vertices: [0, rows) are rows, [rows, rows+cols) are columns.
  UnionFind uf(rows + cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = m.row(i).find_first(); j < cols;
         j = m.row(i).find_next(j))
      uf.unite(i, rows + j);

  // Collect member rows/cols per root, restricted to nonzero rows/cols.
  std::unordered_map<std::size_t, std::size_t> component_of_root;
  std::vector<Component> components;
  std::vector<std::vector<std::size_t>> comp_rows, comp_cols;
  for (std::size_t i = 0; i < rows; ++i) {
    if (m.row(i).none()) continue;
    const auto root = uf.find(i);
    auto [it, inserted] =
        component_of_root.try_emplace(root, comp_rows.size());
    if (inserted) {
      comp_rows.emplace_back();
      comp_cols.emplace_back();
    }
    comp_rows[it->second].push_back(i);
  }
  for (std::size_t j = 0; j < cols; ++j) {
    const auto root = uf.find(rows + j);
    const auto it = component_of_root.find(root);
    if (it == component_of_root.end()) continue;  // empty column
    comp_cols[it->second].push_back(j);
  }

  components.reserve(comp_rows.size());
  for (std::size_t c = 0; c < comp_rows.size(); ++c) {
    Component comp;
    comp.row_map = std::move(comp_rows[c]);
    comp.col_map = std::move(comp_cols[c]);
    comp.matrix = BinaryMatrix(comp.row_map.size(), comp.col_map.size());
    // Inverse column map for the fill.
    std::unordered_map<std::size_t, std::size_t> col_pos;
    for (std::size_t j = 0; j < comp.col_map.size(); ++j)
      col_pos.emplace(comp.col_map[j], j);
    for (std::size_t i = 0; i < comp.row_map.size(); ++i) {
      const BitVec& row = m.row(comp.row_map[i]);
      for (std::size_t j = row.find_first(); j < cols; j = row.find_next(j)) {
        const auto it = col_pos.find(j);
        EBMF_ASSERT(it != col_pos.end());  // cell's column is in component
        comp.matrix.set(i, it->second);
      }
    }
    components.push_back(std::move(comp));
  }
  return components;
}

Partition lift_partition(const Partition& p, const Component& component,
                         std::size_t original_rows,
                         std::size_t original_cols) {
  Partition out;
  out.reserve(p.size());
  for (const Rectangle& rect : p) {
    Rectangle big{BitVec(original_rows), BitVec(original_cols)};
    for (std::size_t i = rect.rows.find_first(); i < rect.rows.size();
         i = rect.rows.find_next(i))
      big.rows.set(component.row_map[i]);
    for (std::size_t j = rect.cols.find_first(); j < rect.cols.size();
         j = rect.cols.find_next(j))
      big.cols.set(component.col_map[j]);
    out.push_back(std::move(big));
  }
  return out;
}

}  // namespace ebmf
