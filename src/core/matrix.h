#pragma once
/// \file matrix.h
/// \brief BinaryMatrix: the 0/1 addressing pattern on a 2D qubit array.
///
/// Rows are stored as BitVec so the row-packing heuristic's inner loop
/// (subset test + subtraction over a row) is word-parallel. The matrix is
/// the central value type of the library: benchmark generators produce it,
/// heuristics and the SMT encoder consume it, and partitions are validated
/// against it.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/bitvec.h"
#include "support/rng.h"

namespace ebmf {

/// A dense m×n matrix over {0,1}.
///
/// Invariant: every row BitVec has length cols().
class BinaryMatrix {
 public:
  /// An empty 0×0 matrix.
  BinaryMatrix() = default;

  /// An m×n all-zero matrix.
  BinaryMatrix(std::size_t m, std::size_t n)
      : n_(n), rows_(m, BitVec(n)) {}

  /// Build from rows of '0'/'1' characters; all rows must have equal length.
  /// Example: BinaryMatrix::from_strings({"101", "010"}).
  static BinaryMatrix from_strings(const std::vector<std::string>& rows);

  /// Parse a semicolon- or newline-separated 0/1 grid, e.g. "101;010;110".
  static BinaryMatrix parse(const std::string& text);

  /// Adopt pre-built rows (each of length `n`).
  static BinaryMatrix from_rows(std::vector<BitVec> rows, std::size_t n);

  /// Number of rows.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  /// Number of columns.
  [[nodiscard]] std::size_t cols() const noexcept { return n_; }

  /// Entry (i, j). Preconditions: i < rows(), j < cols().
  [[nodiscard]] bool test(std::size_t i, std::size_t j) const {
    EBMF_ASSERT(i < rows());
    return rows_[i].test(j);
  }

  /// Set entry (i, j).
  void set(std::size_t i, std::size_t j, bool value = true) {
    EBMF_ASSERT(i < rows());
    rows_[i].set(j, value);
  }

  /// Row i as a bit vector.
  [[nodiscard]] const BitVec& row(std::size_t i) const {
    EBMF_ASSERT(i < rows());
    return rows_[i];
  }

  /// All rows (for the linalg rank routines).
  [[nodiscard]] const std::vector<BitVec>& row_vectors() const noexcept {
    return rows_;
  }

  /// Column j materialized as a bit vector of length rows().
  [[nodiscard]] BitVec col(std::size_t j) const;

  /// The transpose.
  [[nodiscard]] BinaryMatrix transposed() const;

  /// Total number of 1 entries.
  [[nodiscard]] std::size_t ones_count() const noexcept;

  /// Coordinates of all 1 entries in row-major order.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> ones() const;

  /// True when the matrix contains no 1.
  [[nodiscard]] bool is_zero() const noexcept;

  /// Rows reordered: result row i = this row perm[i].
  /// Precondition: perm is a permutation of [0, rows()).
  [[nodiscard]] BinaryMatrix permuted_rows(
      const std::vector<std::size_t>& perm) const;

  /// Kronecker (tensor) product: (A⊗B)[i·p+k][j·q+l] = A[i][j]·B[k][l]
  /// where B is p×q. This is the FTQC two-level structure of Sec. V.
  [[nodiscard]] static BinaryMatrix kron(const BinaryMatrix& a,
                                         const BinaryMatrix& b);

  /// A uniformly random m×n matrix where each entry is 1 with probability
  /// `occupancy` (the paper's random benchmark family).
  static BinaryMatrix random(std::size_t m, std::size_t n, double occupancy,
                             Rng& rng);

  /// Render as rows of '0'/'1' joined by '\n'.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const BinaryMatrix& a,
                         const BinaryMatrix& b) noexcept {
    return a.n_ == b.n_ && a.rows_ == b.rows_;
  }

 private:
  std::size_t n_ = 0;
  std::vector<BitVec> rows_;
};

}  // namespace ebmf
