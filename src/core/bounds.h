#pragma once
/// \file bounds.h
/// \brief Upper and lower bounds on the binary rank r_B(M) that bracket the
/// SAP search (Algorithm 1).
///
///   rank_ℝ(M)  ≤  r_B(M)  ≤  min(#distinct nonzero rows, #distinct cols)
///
/// The left inequality is Eq. 3 of the paper (binary factorization is a real
/// factorization with extra constraints); the right is the trivial
/// single-row/column partition with duplicates consolidated.

#include <cstddef>

#include "core/matrix.h"

namespace ebmf {

/// Exact rank of M over ℝ (Eq. 3's lower bound on r_B).
std::size_t real_rank(const BinaryMatrix& m);

/// Number of distinct nonzero rows of M.
std::size_t distinct_nonzero_rows(const BinaryMatrix& m);

/// The trivial upper bound: min(#distinct nonzero rows, #distinct nonzero
/// columns) — the size of the trivial heuristic's partition.
std::size_t trivial_upper_bound(const BinaryMatrix& m);

}  // namespace ebmf
