#include "core/greedy_rect.h"

#include <numeric>

#include "support/rng.h"
#include "support/stopwatch.h"

namespace ebmf {

Partition greedy_rectangles_pass(const BinaryMatrix& m,
                                 const std::vector<std::size_t>& row_order) {
  detail::check_row_order(m.rows(), row_order);
  // uncovered[i] = 1s of row i not yet covered by an extracted rectangle.
  std::vector<BitVec> uncovered;
  uncovered.reserve(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) uncovered.push_back(m.row(i));

  Partition p;
  for (std::size_t seed : row_order) {
    if (uncovered[seed].none()) continue;
    // The seed's uncovered 1s become the column set; grow vertically to
    // every row whose uncovered 1s can host the whole set. (The seed row
    // itself caps any wider column choice, so this is the maximal
    // rectangle with this seed's full residue as columns.)
    BitVec cols = uncovered[seed];
    BitVec rows(m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r)
      if (cols.subset_of(uncovered[r])) rows.set(r);
    EBMF_ASSERT(rows.test(seed));
    for (std::size_t r = rows.find_first(); r < m.rows();
         r = rows.find_next(r))
      uncovered[r] -= cols;
    p.push_back(Rectangle{std::move(rows), std::move(cols)});
  }
  EBMF_ENSURES(static_cast<bool>(validate_partition(m, p)));
  return p;
}

RowPackingResult greedy_rectangles(const BinaryMatrix& m,
                                   const RowPackingOptions& options) {
  Stopwatch timer;
  RowPackingResult best;
  Rng rng(options.seed);
  const BinaryMatrix mt =
      options.use_transpose ? m.transposed() : BinaryMatrix{};

  const auto make_order = [&](const BinaryMatrix& mat) {
    std::vector<std::size_t> order(mat.rows());
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (options.order == RowOrder::Shuffle) rng.shuffle(order);
    return order;
  };
  const auto consider = [&](Partition cand, bool was_transposed) {
    if (best.trials_run == 0 || cand.size() < best.partition.size()) {
      best.partition = std::move(cand);
      best.from_transpose = was_transposed;
    }
  };

  const std::size_t trials = std::max<std::size_t>(options.trials, 1);
  for (std::size_t t = 0; t < trials; ++t) {
    consider(greedy_rectangles_pass(m, make_order(m)), false);
    ++best.trials_run;
    if (options.stop_at != 0 && best.partition.size() <= options.stop_at)
      break;
    if (options.use_transpose) {
      consider(transposed(greedy_rectangles_pass(mt, make_order(mt))), true);
      ++best.trials_run;
      if (options.stop_at != 0 && best.partition.size() <= options.stop_at)
        break;
    }
    if (options.budget.exhausted()) break;
    if (options.order != RowOrder::Shuffle) break;
  }
  best.seconds = timer.seconds();
  return best;
}

}  // namespace ebmf
