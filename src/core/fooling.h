#pragma once
/// \file fooling.h
/// \brief Fooling sets: combinatorial lower bounds on the binary rank.
///
/// A fooling set S is a set of 1-cells such that for any two distinct
/// (i,j), (i',j') ∈ S, at least one of the crossing cells (i,j'), (i',j) is
/// a 0. No rectangle can contain two fooling cells, so |S| ≤ r_B(M)
/// (paper §II; the filled markers of Fig. 1b certify that partition's
/// optimality). The bound is not always tight — the Eq. 2 matrix has
/// r_B = 3 but maximum fooling set 2 — and the maximum fooling set problem
/// is itself hard, so we provide a greedy heuristic plus an exact
/// SAT-based search (it doubles as a stress test of the cardinality
/// encodings). Fooling sets also feed Watson's tensor lower bound (Eq. 5).

#include <cstdint>
#include <utility>
#include <vector>

#include "core/matrix.h"
#include "support/budget.h"

namespace ebmf {

/// A set of 1-cells, each (row, col).
using CellSet = std::vector<std::pair<std::size_t, std::size_t>>;

/// True when `cells` is a fooling set of `m`: all cells are 1s and every
/// distinct pair has a 0 crossing cell.
bool is_fooling_set(const BinaryMatrix& m, const CellSet& cells);

/// Greedy maximal fooling set: scan 1-cells (in a seed-shuffled order) and
/// keep each cell compatible with all kept so far. Runs `trials` shuffles
/// and returns the largest set found. Result size ≤ φ(M) ≤ r_B(M).
CellSet greedy_fooling_set(const BinaryMatrix& m, std::size_t trials = 16,
                           std::uint64_t seed = 1);

/// Exact maximum fooling set φ(M) via SAT with cardinality constraints.
/// Fooling cells must lie on distinct rows and columns, so φ ≤ min(m, n)
/// and the search solves at most min(m, n) decision problems.
/// `budget` bounds the work; on exhaustion the best set found so far is
/// returned (it is still a valid fooling set, possibly not maximum).
CellSet max_fooling_set(const BinaryMatrix& m, const Budget& budget = {});

}  // namespace ebmf
