#pragma once
/// \file trivial.h
/// \brief The trivial EBMF heuristic (paper §III-B, first paragraph):
/// partition into single rows or single columns, consolidating duplicates.
///
/// Each distinct nonzero row pattern w becomes one rectangle
/// {rows equal to w} × {1s of w}; symmetrically for columns; the smaller of
/// the two partitions is returned. Its size equals trivial_upper_bound(M).

#include "core/partition.h"

namespace ebmf {

/// Partition M into consolidated duplicate rows only.
Partition trivial_row_partition(const BinaryMatrix& m);

/// The trivial heuristic: better of rows-consolidated / cols-consolidated.
Partition trivial_ebmf(const BinaryMatrix& m);

}  // namespace ebmf
