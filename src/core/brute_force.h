#pragma once
/// \file brute_force.h
/// \brief Exhaustive exact binary rank for tiny matrices.
///
/// Used as ground truth by the test suite (independent of both the SMT
/// encoder and the SAT solver, so agreement is meaningful) and to verify the
/// paper's worked examples (Fig. 1b needs 5 rectangles; the Eq. 2 matrix
/// needs 3 while its largest fooling set has size 2).
///
/// The search assigns rectangle labels to the 1-cells in row-major order
/// with first-occurrence canonical numbering (cell may open label k only if
/// labels 0..k-1 are in use), prunes label choices that violate the
/// rectangle closure condition (Eq. 1), and finally checks that every label
/// class is exactly a full rectangle. Exponential — intended for matrices
/// with ≲ 20 ones.

#include <cstdint>
#include <optional>

#include "core/partition.h"
#include "support/budget.h"

namespace ebmf {

/// Result of the exhaustive search.
struct BruteForceResult {
  std::size_t binary_rank = 0;  ///< Minimum number of rectangles.
  Partition partition;          ///< One optimal partition (witness).
};

/// Compute r_B(M) exactly by exhaustive search.
/// `max_rank` caps the search (0 = use the trivial upper bound); `budget`
/// bounds the work (deadline/cancellation plus max_nodes recursion steps).
/// Returns nullopt if max_rank was set below the true rank or the budget
/// ran out before the rank was certified.
std::optional<BruteForceResult> brute_force_ebmf(const BinaryMatrix& m,
                                                 std::size_t max_rank = 0,
                                                 const Budget& budget = {});

}  // namespace ebmf
