#include "core/trivial.h"

#include <unordered_map>

namespace ebmf {

Partition trivial_row_partition(const BinaryMatrix& m) {
  // Group equal nonzero rows; one rectangle per group.
  std::unordered_map<BitVec, std::size_t, BitVecHash> group;  // row -> index
  Partition p;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const BitVec& r = m.row(i);
    if (r.none()) continue;
    auto [it, inserted] = group.try_emplace(r, p.size());
    if (inserted) p.push_back(Rectangle{BitVec(m.rows()), r});
    p[it->second].rows.set(i);
  }
  return p;
}

Partition trivial_ebmf(const BinaryMatrix& m) {
  Partition by_rows = trivial_row_partition(m);
  Partition by_cols = transposed(trivial_row_partition(m.transposed()));
  return by_cols.size() < by_rows.size() ? by_cols : by_rows;
}

}  // namespace ebmf
