#pragma once
/// \file preprocess.h
/// \brief Exactness-preserving problem reductions applied before search.
///
/// Two structural facts about rectangle partitions enable large reductions
/// with no loss of optimality:
///
///  1. **Duplicates.** Equal rows always join the same rectangles (their 1s
///     are partitioned identically WLOG), so r_B is invariant under
///     collapsing duplicate rows/columns and dropping zero ones. The paper
///     uses this inside the trivial heuristic; applying it *before the SMT
///     phase* shrinks the formula quadratically.
///
///  2. **Connected components.** A rectangle is a biclique of the bipartite
///     row/column graph, hence connected: no rectangle spans two connected
///     components, so r_B(M) = Σ r_B(component). Sparse patterns (the
///     paper's 100×100 at 1–5% occupancy) shatter into many small
///     components, each individually within reach of the exact solver even
///     though the whole matrix is "too large for SMT" (paper §IV-B).
///
/// Both reductions return the mapping needed to lift a sub-partition back
/// to the original matrix; lifting preserves validity and size.

#include <vector>

#include "core/matrix.h"
#include "core/partition.h"

namespace ebmf {

/// Duplicate/zero row-and-column reduction of a matrix.
struct DuplicateReduction {
  BinaryMatrix reduced;  ///< No zero or duplicate rows/columns.
  /// row_groups[i] = original rows collapsed into reduced row i.
  std::vector<std::vector<std::size_t>> row_groups;
  /// col_groups[j] = original columns collapsed into reduced column j.
  std::vector<std::vector<std::size_t>> col_groups;
  std::size_t original_rows = 0;
  std::size_t original_cols = 0;
};

/// Collapse duplicate rows and columns and drop zero ones.
/// r_B(reduced) == r_B(m); zero matrix reduces to 0×0.
DuplicateReduction reduce_duplicates(const BinaryMatrix& m);

/// Lift a partition of the reduced matrix back to the original:
/// each rectangle's row/column sets expand to the full duplicate groups.
Partition expand_partition(const Partition& p, const DuplicateReduction& r);

/// One connected component of the bipartite row/column graph.
struct Component {
  BinaryMatrix matrix;                 ///< The component's submatrix.
  std::vector<std::size_t> row_map;    ///< Component row -> original row.
  std::vector<std::size_t> col_map;    ///< Component col -> original col.
};

/// Split into connected components (rows/cols with no 1s appear in none).
/// The components' ones partition the ones of `m`.
std::vector<Component> split_components(const BinaryMatrix& m);

/// Lift a partition of a component back into the original index space.
Partition lift_partition(const Partition& p, const Component& component,
                         std::size_t original_rows, std::size_t original_cols);

}  // namespace ebmf
