#include "core/partition.h"

#include <sstream>

namespace ebmf {

ValidationResult validate_partition(const BinaryMatrix& m, const Partition& p) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  // Coverage counter per cell; overlap and zero-coverage detected on the fly.
  std::vector<BitVec> covered(rows, BitVec(cols));
  for (std::size_t t = 0; t < p.size(); ++t) {
    const Rectangle& r = p[t];
    if (r.rows.size() != rows || r.cols.size() != cols)
      return {false, "rectangle " + std::to_string(t) + " has wrong shape"};
    if (r.empty())
      return {false, "rectangle " + std::to_string(t) + " is empty"};
    for (std::size_t i = r.rows.find_first(); i < rows;
         i = r.rows.find_next(i)) {
      if (!r.cols.subset_of(m.row(i)))
        return {false, "rectangle " + std::to_string(t) + " covers a 0 in row " +
                           std::to_string(i)};
      if (covered[i].intersects(r.cols))
        return {false, "rectangle " + std::to_string(t) +
                           " overlaps a previous rectangle in row " +
                           std::to_string(i)};
      covered[i] |= r.cols;
    }
  }
  for (std::size_t i = 0; i < rows; ++i)
    if (!(covered[i] == m.row(i)))
      return {false, "row " + std::to_string(i) + " not fully covered"};
  return {true, {}};
}

BinaryMatrix partition_union(const Partition& p, std::size_t rows,
                             std::size_t cols) {
  BinaryMatrix out(rows, cols);
  for (const Rectangle& r : p)
    for (std::size_t i = r.rows.find_first(); i < rows;
         i = r.rows.find_next(i))
      for (std::size_t j = r.cols.find_first(); j < cols;
           j = r.cols.find_next(j))
        out.set(i, j);
  return out;
}

Partition transposed(const Partition& p) {
  Partition out;
  out.reserve(p.size());
  for (const Rectangle& r : p) out.push_back(r.transposed());
  return out;
}

std::string render_partition(const BinaryMatrix& m, const Partition& p) {
  static const std::string kSymbols =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  std::vector<std::string> grid(m.rows(), std::string(m.cols(), '.'));
  for (std::size_t t = 0; t < p.size(); ++t) {
    const char sym = kSymbols[t % kSymbols.size()];
    const Rectangle& r = p[t];
    for (std::size_t i = r.rows.find_first(); i < m.rows();
         i = r.rows.find_next(i))
      for (std::size_t j = r.cols.find_first(); j < m.cols();
           j = r.cols.find_next(j))
        grid[i][j] = sym;
  }
  std::ostringstream out;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (i != 0) out << '\n';
    out << grid[i];
  }
  return out.str();
}

}  // namespace ebmf
