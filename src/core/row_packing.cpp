#include "core/row_packing.h"

#include <algorithm>
#include <numeric>

#include "support/rng.h"

namespace ebmf {

namespace detail {

void check_row_order(std::size_t rows,
                     const std::vector<std::size_t>& row_order) {
  EBMF_EXPECTS(row_order.size() == rows);
  std::vector<char> seen(rows, 0);
  for (std::size_t i : row_order) {
    EBMF_EXPECTS(i < rows);
    EBMF_EXPECTS(seen[i] == 0);  // row_order must be a permutation
    seen[i] = 1;
  }
}

}  // namespace detail

Partition row_packing_pass(const BinaryMatrix& m,
                           const std::vector<std::size_t>& row_order,
                           bool basis_update) {
  detail::check_row_order(m.rows(), row_order);
  // basis vector j is P[j].cols; its rectangle's rows are P[j].rows.
  // Invariants maintained (see DESIGN.md): basis vectors are nonempty and
  // pairwise non-nested; P[j].rows × P[j].cols are pairwise disjoint cells.
  Partition p;

  for (std::size_t row_index : row_order) {
    EBMF_EXPECTS(row_index < m.rows());
    BitVec residue = m.row(row_index);
    // Greedy packing: subtract every basis vector contained in the residue,
    // growing its rectangle vertically (lines 4–7).
    for (auto& rect : p) {
      if (residue.none()) break;
      if (rect.cols.subset_of(residue)) {
        rect.rows.set(row_index);
        residue -= rect.cols;
      }
    }
    if (residue.none()) continue;

    // Residue becomes a new basis vector (lines 9–16). The basis update
    // shrinks every existing basis vector that contains the residue; the
    // rows of the shrunk rectangles join the new rectangle so their cells
    // stay covered.
    BitVec new_rows(m.rows());
    new_rows.set(row_index);
    if (basis_update) {
      for (auto& rect : p) {
        if (residue.subset_of(rect.cols)) {
          EBMF_ASSERT(!(residue == rect.cols));  // equality was packed above
          new_rows |= rect.rows;
          rect.cols -= residue;
        }
      }
    }
    p.push_back(Rectangle{std::move(new_rows), std::move(residue)});
  }
  EBMF_ENSURES(std::none_of(p.begin(), p.end(),
                            [](const Rectangle& r) { return r.empty(); }));
  return p;
}

RowPackingResult row_packing_ebmf(const BinaryMatrix& m,
                                  const RowPackingOptions& options) {
  Stopwatch timer;
  RowPackingResult best;
  Rng rng(options.seed);

  const BinaryMatrix mt =
      options.use_transpose ? m.transposed() : BinaryMatrix{};

  const auto ordered = [&](const BinaryMatrix& mat,
                           std::size_t trial) -> std::vector<std::size_t> {
    std::vector<std::size_t> order(mat.rows());
    std::iota(order.begin(), order.end(), std::size_t{0});
    switch (options.order) {
      case RowOrder::Shuffle:
        rng.shuffle(order);
        break;
      case RowOrder::SortedByOnes:
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return mat.row(a).count() < mat.row(b).count();
                         });
        break;
      case RowOrder::AsIs:
        break;
    }
    (void)trial;
    return order;
  };

  const auto consider = [&](Partition cand, bool was_transposed) {
    if (best.trials_run == 0 || cand.size() < best.partition.size()) {
      best.partition = std::move(cand);
      best.from_transpose = was_transposed;
    }
  };

  const std::size_t trials = std::max<std::size_t>(options.trials, 1);
  for (std::size_t t = 0; t < trials; ++t) {
    consider(row_packing_pass(m, ordered(m, t), options.basis_update), false);
    ++best.trials_run;
    if (options.stop_at != 0 && best.partition.size() <= options.stop_at)
      break;
    if (options.use_transpose) {
      Partition pt = row_packing_pass(mt, ordered(mt, t), options.basis_update);
      consider(transposed(std::move(pt)), true);
      ++best.trials_run;
      if (options.stop_at != 0 && best.partition.size() <= options.stop_at)
        break;
    }
    if (options.budget.exhausted()) break;
    // Deterministic orders never change between trials; one pass suffices.
    if (options.order != RowOrder::Shuffle) break;
  }
  best.seconds = timer.seconds();
  return best;
}

}  // namespace ebmf
