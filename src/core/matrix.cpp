#include "core/matrix.h"

#include <algorithm>

namespace ebmf {

BinaryMatrix BinaryMatrix::from_strings(const std::vector<std::string>& rows) {
  BinaryMatrix m;
  if (rows.empty()) return m;
  m.n_ = rows[0].size();
  m.rows_.reserve(rows.size());
  for (const auto& r : rows) {
    EBMF_EXPECTS(r.size() == m.n_);
    m.rows_.push_back(BitVec::from_string(r));
  }
  return m;
}

BinaryMatrix BinaryMatrix::parse(const std::string& text) {
  std::vector<std::string> rows;
  std::string cur;
  for (char ch : text) {
    if (ch == ';' || ch == '\n') {
      if (!cur.empty()) rows.push_back(std::move(cur));
      cur.clear();
    } else if (ch == '0' || ch == '1') {
      cur.push_back(ch);
    } else {
      EBMF_EXPECTS(ch == ' ' || ch == '\t' || ch == '\r');
    }
  }
  if (!cur.empty()) rows.push_back(std::move(cur));
  return from_strings(rows);
}

BinaryMatrix BinaryMatrix::from_rows(std::vector<BitVec> rows, std::size_t n) {
  for (const auto& r : rows) EBMF_EXPECTS(r.size() == n);
  BinaryMatrix m;
  m.n_ = n;
  m.rows_ = std::move(rows);
  return m;
}

BitVec BinaryMatrix::col(std::size_t j) const {
  EBMF_EXPECTS(j < n_);
  BitVec c(rows());
  for (std::size_t i = 0; i < rows(); ++i)
    if (rows_[i].test(j)) c.set(i);
  return c;
}

BinaryMatrix BinaryMatrix::transposed() const {
  BinaryMatrix t(n_, rows());
  for (std::size_t i = 0; i < rows(); ++i)
    for (std::size_t j = rows_[i].find_first(); j < n_;
         j = rows_[i].find_next(j))
      t.set(j, i);
  return t;
}

std::size_t BinaryMatrix::ones_count() const noexcept {
  std::size_t c = 0;
  for (const auto& r : rows_) c += r.count();
  return c;
}

std::vector<std::pair<std::size_t, std::size_t>> BinaryMatrix::ones() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(ones_count());
  for (std::size_t i = 0; i < rows(); ++i)
    for (std::size_t j = rows_[i].find_first(); j < n_;
         j = rows_[i].find_next(j))
      out.emplace_back(i, j);
  return out;
}

bool BinaryMatrix::is_zero() const noexcept {
  return std::all_of(rows_.begin(), rows_.end(),
                     [](const BitVec& r) { return r.none(); });
}

BinaryMatrix BinaryMatrix::permuted_rows(
    const std::vector<std::size_t>& perm) const {
  EBMF_EXPECTS(perm.size() == rows());
  std::vector<BitVec> out;
  out.reserve(rows());
  for (std::size_t i : perm) {
    EBMF_EXPECTS(i < rows());
    out.push_back(rows_[i]);
  }
  return from_rows(std::move(out), n_);
}

BinaryMatrix BinaryMatrix::kron(const BinaryMatrix& a, const BinaryMatrix& b) {
  BinaryMatrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (!a.test(i, j)) continue;
      for (std::size_t k = 0; k < b.rows(); ++k)
        for (std::size_t l = 0; l < b.cols(); ++l)
          if (b.test(k, l)) out.set(i * b.rows() + k, j * b.cols() + l);
    }
  return out;
}

BinaryMatrix BinaryMatrix::random(std::size_t m, std::size_t n,
                                  double occupancy, Rng& rng) {
  BinaryMatrix out(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (rng.chance(occupancy)) out.set(i, j);
  return out;
}

std::string BinaryMatrix::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < rows(); ++i) {
    if (i != 0) s.push_back('\n');
    s += rows_[i].to_string();
  }
  return s;
}

}  // namespace ebmf
